"""The schedule fuzzer: seed sweeps, minimization, repro files.

``python -m repro simtest --seeds N`` runs here.  Each seed derives a
workload script (:func:`~repro.simtest.script.generate_script`) and a
cooperative schedule (:class:`~repro.simtest.scheduler.SimScheduler`),
executes the world twice, and compares the two runs' trace digests —
same seed must mean byte-identical behavior, so nondeterminism is
itself a reported failure, not just a flaky test.

On an invariant violation the fuzzer delta-debugs the script (drop the
death-injection rate if the violation survives without it, then ddmin
over the op list) and writes a self-contained
``simtest-repro-<seed>.json``: format tag, seed, original + minimized
script, the violations, and the minimized run's trace / invariant-log /
flight-recorder tails.  :func:`replay_repro` runs such a file back
through the same door.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.simtest.invariants import Violation
from repro.simtest.script import WorkloadScript, generate_script
from repro.simtest.world import SimWorld

__all__ = [
    "SimReport",
    "run_script",
    "run_simtest",
    "minimize_script",
    "write_repro",
    "load_repro",
    "replay_repro",
    "REPRO_FORMAT",
    "CORPUS_FORMAT",
]

REPRO_FORMAT = "simtest-repro-v1"
CORPUS_FORMAT = "simtest-corpus-v1"

#: run-budget for the minimizer (each probe is a full simulated run)
_MINIMIZE_BUDGET = 60


@dataclass
class SimReport:
    """Everything one simulated run produced."""

    seed: int
    steps: int
    violations: list[Violation]
    trace: list[dict[str, Any]]
    grants: list[tuple[int, str, str]]
    invariant_log: list[str]
    digest: str
    flight: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations


def _digest(trace: list[dict[str, Any]],
            grants: list[tuple[int, str, str]],
            invariant_log: list[str]) -> str:
    doc = {
        "trace": trace,
        "grants": [list(g) for g in grants],
        "log": invariant_log,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_script(script: WorkloadScript, seed: int, *,
               max_steps: int = 50_000) -> SimReport:
    """Execute one script under the schedule derived from ``seed``."""
    world = SimWorld(script, seed)
    world.run(max_steps=max_steps)
    digest = _digest(world.trace, world.sched.trace, world.checker.log)
    return SimReport(
        seed=seed,
        steps=world.sched.steps,
        violations=list(world.checker.violations),
        trace=world.trace,
        grants=world.sched.trace,
        invariant_log=world.checker.log,
        digest=digest,
        flight=world.server._flight.tail(64),
    )


# -- minimization ----------------------------------------------------------------


def _still_fails(script: WorkloadScript, seed: int,
                 invariant: str) -> SimReport | None:
    report = run_script(script, seed)
    if any(v.invariant == invariant for v in report.violations):
        return report
    return None


def minimize_script(
    script: WorkloadScript,
    seed: int,
    invariant: str,
    *,
    budget: int = _MINIMIZE_BUDGET,
) -> tuple[WorkloadScript, SimReport]:
    """Shrink ``script`` while the same invariant still fails.

    Delta debugging (ddmin) over the op list — every subset of an op
    list is a valid script because ops referencing unknown handles are
    skipped — preceded by one attempt to zero the death-injection rate.
    Each probe replays the *same* scheduler seed, so "still fails" means
    the same schedule family reproduces the same violation.  Returns the
    smallest failing script found and its report.
    """
    best = script
    best_report = _still_fails(script, seed, invariant)
    if best_report is None:
        raise ValueError(
            f"script does not violate {invariant!r} under seed {seed}"
        )
    runs = 0

    def probe(candidate: WorkloadScript) -> SimReport | None:
        nonlocal runs
        if runs >= budget:
            return None
        runs += 1
        return _still_fails(candidate, seed, invariant)

    if best.death_rate:
        doc = best.to_dict()
        doc["death_rate"] = 0.0
        report = probe(WorkloadScript.from_dict(doc))
        if report is not None:
            best = WorkloadScript.from_dict(doc)
            best_report = report

    ops = list(best.ops)
    n = 2
    while len(ops) >= 2 and runs < budget:
        chunk = max(1, len(ops) // n)
        reduced = None
        for i in range(0, len(ops), chunk):
            candidate_ops = ops[:i] + ops[i + chunk:]
            if not candidate_ops:
                continue
            report = probe(best.replace_ops(candidate_ops))
            if report is not None:
                reduced = (candidate_ops, report)
                break
        if reduced is not None:
            ops, best_report = reduced
            best = best.replace_ops(ops)
            n = max(n - 1, 2)
        else:
            if n >= len(ops):
                break
            n = min(n * 2, len(ops))
    return best, best_report


# -- repro files -----------------------------------------------------------------


def write_repro(
    directory: str | Path,
    *,
    seed: int,
    script: WorkloadScript,
    minimized: WorkloadScript,
    report: SimReport,
    min_report: SimReport,
) -> Path:
    """Write a self-contained ``simtest-repro-<seed>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"simtest-repro-{seed}.json"
    doc = {
        "format": REPRO_FORMAT,
        "seed": seed,
        "invariant": report.violations[0].invariant,
        "violations": [v.to_dict() for v in report.violations],
        "minimized_violations": [
            v.to_dict() for v in min_report.violations
        ],
        "script": script.to_dict(),
        "minimized_script": minimized.to_dict(),
        "original_ops": len(script.ops),
        "minimized_ops": len(minimized.ops),
        "steps": min_report.steps,
        "digest": min_report.digest,
        "trace_tail": min_report.trace[-80:],
        "grant_tail": [list(g) for g in min_report.grants[-120:]],
        "invariant_log_tail": min_report.invariant_log[-40:],
        "flight_tail": min_report.flight,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_repro(path: str | Path) -> dict[str, Any]:
    """Load and validate a repro file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} file "
            f"(format={doc.get('format')!r})"
        )
    return doc


def replay_repro(source: str | Path | dict[str, Any]) -> SimReport:
    """Re-run a repro file's minimized script under its original seed."""
    doc = source if isinstance(source, dict) else load_repro(source)
    script = WorkloadScript.from_dict(doc["minimized_script"])
    return run_script(script, int(doc["seed"]))


# -- seed sweeps -----------------------------------------------------------------


def run_simtest(
    seeds: Iterable[int],
    *,
    ops: int = 24,
    check_determinism: bool = True,
    minimize: bool = True,
    out_dir: str | Path | None = None,
    max_steps: int = 50_000,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Fuzz a set of seeds; returns a JSON-ready summary.

    For each seed: derive a script, run it (twice when
    ``check_determinism`` — unequal digests are a
    ``replay-determinism`` failure), and on violation minimize the
    script and write a repro file into ``out_dir``.
    """
    results: list[dict[str, Any]] = []
    failures = 0
    total_steps = 0
    for seed in seeds:
        script = generate_script(seed, ops=ops)
        report = run_script(script, seed, max_steps=max_steps)
        if check_determinism and report.ok:
            rerun = run_script(script, seed, max_steps=max_steps)
            if rerun.digest != report.digest:
                report.violations.append(Violation(
                    invariant="replay-determinism",
                    detail=(
                        f"two runs of seed {seed} diverged: "
                        f"{report.digest[:16]} != {rerun.digest[:16]}"
                    ),
                    step=min(report.steps, rerun.steps),
                ))
        entry: dict[str, Any] = {
            "seed": seed,
            "ok": report.ok,
            "steps": report.steps,
            "ops": len(script.ops),
            "digest": report.digest,
        }
        total_steps += report.steps
        if not report.ok:
            failures += 1
            entry["violations"] = [v.to_dict() for v in report.violations]
            invariant = report.violations[0].invariant
            if minimize and invariant != "replay-determinism":
                minimized, min_report = minimize_script(
                    script, seed, invariant
                )
                entry["minimized_ops"] = len(minimized.ops)
                if out_dir is not None:
                    path = write_repro(
                        out_dir, seed=seed, script=script,
                        minimized=minimized, report=report,
                        min_report=min_report,
                    )
                    entry["repro"] = str(path)
            elif out_dir is not None:
                path = write_repro(
                    out_dir, seed=seed, script=script, minimized=script,
                    report=report, min_report=report,
                )
                entry["repro"] = str(path)
        if progress is not None:
            status = "ok" if report.ok else (
                report.violations[0].invariant
            )
            progress(f"seed {seed}: {status} ({report.steps} steps)")
        results.append(entry)
    return {
        "format": "simtest-summary-v1",
        "seeds": len(results),
        "failures": failures,
        "total_steps": total_steps,
        "results": results,
    }
