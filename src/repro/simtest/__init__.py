"""Deterministic simulation testing for the serving + resilience stack.

FoundationDB-style: the serving runtime's trickiest bugs (thread-local
override leaks, twin-attach races, identity-checked inflight pops) are
*schedule-dependent* — wall-clock, real-thread tests can neither explore
the schedules systematically nor reproduce one on failure.  This package
runs the **real** runtime code under a virtual clock (:class:`SimClock`)
and a seeded cooperative scheduler (:class:`SimScheduler`), so every
interleaving of worker steps, client operations, timer fires and fault
injections is a pure function of one integer seed:

- :mod:`repro.simtest.clock` — virtual monotonic time with timers; the
  runtime's ``clock=``/``sleeper=`` seams point here under simulation.
- :mod:`repro.simtest.scheduler` — real threads, one runnable at a
  time: tasks park at :func:`sim_yield` points and a seeded RNG picks
  which parked task runs next.
- :mod:`repro.simtest.script` — the workload-script corpus format
  (submit/cancel/await/drain/advance/fault ops) shared by the schedule
  fuzzer, the hypothesis strategy and repro files.
- :mod:`repro.simtest.world` — wires a :class:`~repro.serve.server.
  ScenarioServer` plus a :class:`~repro.resilience.detector.
  FailureDetector` into one simulated world and executes a script.
- :mod:`repro.simtest.invariants` — the invariant library checked after
  every scheduling step and at quiescence.
- :mod:`repro.simtest.fuzzer` — ``python -m repro simtest``: seed
  sweeps, the determinism double-run, script minimization and
  self-contained ``simtest-repro-<seed>.json`` files.
"""

from repro.simtest.clock import SimClock
from repro.simtest.fuzzer import (
    load_repro,
    minimize_script,
    replay_repro,
    run_script,
    run_simtest,
)
from repro.simtest.invariants import Violation
from repro.simtest.scheduler import SimScheduler, SimTask, sim_yield
from repro.simtest.script import WorkloadScript, generate_script
from repro.simtest.world import SimWorld

__all__ = [
    "SimClock",
    "SimScheduler",
    "SimTask",
    "SimWorld",
    "Violation",
    "WorkloadScript",
    "generate_script",
    "load_repro",
    "minimize_script",
    "replay_repro",
    "run_script",
    "run_simtest",
    "sim_yield",
]
