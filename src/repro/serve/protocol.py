"""Wire protocol for the scenario-serving runtime.

Requests and responses are single-line JSON documents (JSONL), the
format both ``python -m repro serve`` transports speak (stdin/file
streams and the local socket).  A request names an operation::

    {"op": "submit", "id": "r1", "scenario": "table2", "priority": "high"}
    {"op": "cancel", "id": "r1"}
    {"op": "result", "id": "r1", "timeout_s": 60}
    {"op": "stats"}
    {"op": "drain"}
    {"op": "shutdown"}

``submit`` accepts optional ``params`` (overrides merged onto the
registered scenario's parameters — the merged set is the job's cache
identity), ``priority`` (one of :data:`PRIORITIES`), ``timeout_s`` and
``max_retries``.  Responses echo the client ``id`` and carry the job's
terminal record; malformed requests produce ``{"op": "error", ...}``
instead of killing the stream.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PRIORITIES",
    "OPS",
    "ProtocolError",
    "parse_request",
    "encode",
]

#: admission classes, highest first — the queue drains in this order
PRIORITIES = ("high", "normal", "low")

#: operations the request stream understands
OPS = ("submit", "cancel", "result", "stats", "drain", "shutdown")


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, unknown op, bad field)."""


def parse_request(line: str) -> dict[str, Any]:
    """Parse and validate one JSONL request line.

    Returns the request document; raises :class:`ProtocolError` with a
    client-presentable message on any malformation.
    """
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(doc).__name__}")
    op = doc.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    if op == "submit":
        if not isinstance(doc.get("scenario"), str) or not doc["scenario"]:
            raise ProtocolError("submit requires a non-empty 'scenario' name")
        params = doc.get("params")
        if params is not None and not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        priority = doc.get("priority", "normal")
        if priority not in PRIORITIES:
            raise ProtocolError(
                f"unknown priority {priority!r}; expected one of {list(PRIORITIES)}"
            )
        timeout_s = doc.get("timeout_s")
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or timeout_s <= 0
        ):
            raise ProtocolError("'timeout_s' must be a positive number")
    if op in ("cancel", "result") and "id" not in doc:
        raise ProtocolError(f"{op} requires the 'id' of a prior submit")
    return doc


def encode(document: dict[str, Any]) -> str:
    """One response document as a compact JSONL line (no trailing newline)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))
