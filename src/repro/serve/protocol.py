"""Wire protocol for the scenario-serving runtime.

Requests and responses are single-line JSON documents (JSONL), the
format both ``python -m repro serve`` transports speak (stdin/file
streams and the local socket).  A request names an operation::

    {"op": "submit", "id": "r1", "scenario": "table2", "priority": "high"}
    {"op": "cancel", "id": "r1"}
    {"op": "result", "id": "r1", "timeout_s": 60}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "health"}
    {"op": "stats-stream", "count": 5, "interval_s": 1.0}
    {"op": "drain"}
    {"op": "shutdown"}

``submit`` accepts optional ``params`` (overrides merged onto the
registered scenario's parameters — the merged set is the job's cache
identity), ``priority`` (one of :data:`PRIORITIES`), ``timeout_s`` and
``max_retries``.  Responses echo the client ``id`` and carry the job's
terminal record; malformed requests produce ``{"op": "error", ...}``
instead of killing the stream.

The three observability verbs never block on work: ``metrics`` returns
the Prometheus text exposition (as a JSON string field — the transport
stays line-oriented), ``health`` the liveness/readiness document, and
``stats-stream`` a bounded sequence of ``stats-tick`` lines (``count``
ticks, ``interval_s`` apart, ``flight_tail`` recorder events each) —
the feed ``python -m repro top`` renders.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PRIORITIES",
    "OPS",
    "ProtocolError",
    "parse_request",
    "encode",
]

#: admission classes, highest first — the queue drains in this order
PRIORITIES = ("high", "normal", "low")

#: operations the request stream understands
OPS = (
    "submit", "cancel", "result", "stats", "metrics", "health",
    "stats-stream", "drain", "shutdown",
)


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, unknown op, bad field)."""


def parse_request(line: str) -> dict[str, Any]:
    """Parse and validate one JSONL request line.

    Returns the request document; raises :class:`ProtocolError` with a
    client-presentable message on any malformation.
    """
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(doc).__name__}")
    op = doc.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    if op == "submit":
        if not isinstance(doc.get("scenario"), str) or not doc["scenario"]:
            raise ProtocolError("submit requires a non-empty 'scenario' name")
        params = doc.get("params")
        if params is not None and not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        priority = doc.get("priority", "normal")
        if priority not in PRIORITIES:
            raise ProtocolError(
                f"unknown priority {priority!r}; expected one of {list(PRIORITIES)}"
            )
        timeout_s = doc.get("timeout_s")
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or timeout_s <= 0
        ):
            raise ProtocolError("'timeout_s' must be a positive number")
    if op in ("cancel", "result") and "id" not in doc:
        raise ProtocolError(f"{op} requires the 'id' of a prior submit")
    if op == "stats-stream":
        count = doc.get("count", 1)
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise ProtocolError("'count' must be an integer >= 1")
        interval_s = doc.get("interval_s", 0)
        if not isinstance(interval_s, (int, float)) or isinstance(
            interval_s, bool
        ) or interval_s < 0:
            raise ProtocolError("'interval_s' must be a number >= 0")
        flight_tail = doc.get("flight_tail", 20)
        if not isinstance(flight_tail, int) or isinstance(
            flight_tail, bool
        ) or flight_tail < 0:
            raise ProtocolError("'flight_tail' must be an integer >= 0")
    return doc


def encode(document: dict[str, Any]) -> str:
    """One response document as a compact JSONL line (no trailing newline)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))
