"""Pragma-as-a-service: the long-running scenario-serving runtime.

The batch-shaped sweep engine (:mod:`repro.sweep`) runs one scenario set
and exits; this package turns the same execution machinery into an
always-on, multi-tenant service in the spirit of the paper's runtime
control loop — accept work continuously, adapt under load, refuse
visibly rather than degrade silently:

- :mod:`~repro.serve.queue` — bounded admission with priority classes
  and explicit load shedding (reject-with-reason, counted in ``obs``),
- :mod:`~repro.serve.scheduler` — a persistent worker pool with batch
  dispatch, per-job timeouts, cancellation, and retry-on-worker-death
  on the resilience layer's backoff ladder, committing each job's
  outcome exactly once,
- :mod:`~repro.serve.server` — :class:`ScenarioServer` (content-address
  request coalescing on the sweep cache key, result-cache reuse,
  streaming progress through the ``obs`` timeline) and the stable
  client facades :class:`ServerHandle` / :class:`JobHandle`,
- :mod:`~repro.serve.protocol` / :mod:`~repro.serve.jsonl` — the JSONL
  wire protocol and its two transports (request streams for
  ``python -m repro serve``, and a local socket).
"""

from repro.serve.protocol import PRIORITIES, ProtocolError
from repro.serve.queue import (
    Job,
    JobCancelled,
    JobFailed,
    JobQueue,
    ShedError,
)
from repro.serve.scheduler import Scheduler, WorkerDeath
from repro.serve.server import JobHandle, ScenarioServer, ServerHandle

__all__ = [
    "PRIORITIES",
    "ProtocolError",
    "Job",
    "JobCancelled",
    "JobFailed",
    "JobQueue",
    "ShedError",
    "Scheduler",
    "WorkerDeath",
    "JobHandle",
    "ScenarioServer",
    "ServerHandle",
]
