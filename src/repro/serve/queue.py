"""Bounded multi-priority admission queue with explicit load shedding.

The serving runtime's backpressure lives here: :class:`JobQueue` holds
at most ``capacity`` pending jobs across three priority classes
(:data:`~repro.serve.protocol.PRIORITIES`).  Admission is all-or-nothing
and *explicit* — a saturated queue rejects the offer with a machine-
readable shed reason instead of blocking the client or growing without
bound, mirroring how the Pragma control loop prefers a cheap, visible
refusal over silent overload.  Shed decisions are counted through
:mod:`repro.obs` (``serve.shed{reason=...}``) by the server.

Within a priority class the queue is FIFO by submission sequence;
``take_batch`` additionally coalesces *compatible* pending jobs (same
priority class and same shared-input ``requires``) into one worker
dispatch so a batch warms its shared inputs once.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import PRIORITIES

__all__ = [
    "SHED_QUEUE_FULL",
    "SHED_SHUTTING_DOWN",
    "SHED_UNKNOWN_SCENARIO",
    "ShedError",
    "JobCancelled",
    "JobFailed",
    "Job",
    "JobQueue",
]

#: shed reasons — the vocabulary of explicit admission refusals
SHED_QUEUE_FULL = "queue-full"
SHED_SHUTTING_DOWN = "shutting-down"
SHED_UNKNOWN_SCENARIO = "unknown-scenario"

#: terminal job statuses (no further transitions)
TERMINAL_STATUSES = frozenset({"done", "failed", "shed", "cancelled", "timeout"})


class ShedError(RuntimeError):
    """Raised when a handle's result is read off a shed request."""

    def __init__(self, reason: str) -> None:
        super().__init__(f"request shed: {reason}")
        self.reason = reason


class JobCancelled(RuntimeError):
    """Raised when a handle's result is read off a cancelled request."""


class JobFailed(RuntimeError):
    """Raised when a handle's result is read off a failed/timed-out job."""


@dataclass
class Job:
    """One admitted unit of work: a scenario execution with an identity.

    ``key`` is the scenario's content-address (the sweep cache key), so
    two jobs with equal keys are the *same* computation — the scheduler
    coalesces them onto one execution.  The job carries its own result
    latch (``done``), terminal ``status``, the event log streamed to
    clients, and a ``committed`` flag that makes result commitment
    exactly-once even when a dying worker races its own retry.
    """

    name: str
    params: dict[str, Any]
    priority: str = "normal"
    seq: int = 0
    key: str = ""
    seed: int = 0
    timeout_s: float | None = None
    max_retries: int = 2
    requires: tuple[str, ...] = ()

    status: str = "queued"
    result: Any = None
    error: str | None = None
    cached: bool = False
    attempts: int = 0
    retries: int = 0
    committed: bool = False
    cancel_requested: bool = False
    subscribers: int = 1
    #: (kind, t_wall_s, attrs) transitions, streamed to clients
    events: list[tuple[str, float, dict[str, Any]]] = field(default_factory=list)
    #: wall-clock submit/start/finish marks for latency accounting
    submitted_t: float = 0.0
    started_t: float | None = None
    finished_t: float | None = None

    done: threading.Event = field(default_factory=threading.Event)
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def terminal(self) -> bool:
        """True once the job reached a terminal status."""
        return self.status in TERMINAL_STATUSES

    @property
    def batch_class(self) -> tuple[str, tuple[str, ...]]:
        """Jobs sharing this class may ride one worker dispatch."""
        return (self.priority, self.requires)

    @property
    def wait_s(self) -> float | None:
        """Seconds from submission to terminal state (None while open)."""
        if self.finished_t is None:
            return None
        return self.finished_t - self.submitted_t

    def to_dict(self) -> dict[str, Any]:
        """The job as a JSON-ready record (the protocol's result shape)."""
        return {
            "job": f"job-{self.seq}",
            "scenario": self.name,
            "params": self.params,
            "priority": self.priority,
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "attempts": self.attempts,
            "retries": self.retries,
            "error": self.error,
            "result": self.result,
            "wait_s": self.wait_s,
        }


class JobQueue:
    """Bounded, priority-classed admission queue (thread-safe).

    ``offer`` either admits a job or returns a shed reason; ``take`` /
    ``take_batch`` block until work or queue closure.  ``capacity``
    bounds *pending* jobs only — running jobs have already left the
    queue, so the bound is pure admission backpressure.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lanes: dict[str, deque[Job]] = {p: deque() for p in PRIORITIES}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return sum(len(lane) for lane in self._lanes.values())

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; offers shed, takes drain then stop."""
        with self._lock:
            return self._closed

    def offer(self, job: Job) -> str | None:
        """Admit ``job`` or return the shed reason (``None`` = admitted).

        Saturation sheds the *offered* job regardless of priority — the
        bound is a hard promise to the jobs already admitted; priority
        governs drain order, not eviction.
        """
        with self._not_empty:
            if self._closed:
                return SHED_SHUTTING_DOWN
            if sum(len(lane) for lane in self._lanes.values()) >= self.capacity:
                return SHED_QUEUE_FULL
            self._lanes[job.priority].append(job)
            self._not_empty.notify()
            return None

    def _pop_locked(self) -> Job | None:
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if lane:
                return lane.popleft()
        return None

    def take(self, timeout: float | None = None) -> Job | None:
        """Block for the next job; ``None`` when closed and drained."""
        with self._not_empty:
            while True:
                job = self._pop_locked()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    def take_batch(
        self, max_batch: int = 1, timeout: float | None = None
    ) -> list[Job]:
        """Block for one job, then greedily add compatible pending jobs.

        Compatibility is :attr:`Job.batch_class` equality — same
        priority class and same shared-input requirements — so one
        dispatch warms its inputs once and never mixes priorities.
        Returns ``[]`` when the queue closed (workers should exit).
        """
        first = self.take(timeout)
        if first is None:
            return []
        batch = [first]
        if max_batch <= 1:
            return batch
        with self._lock:
            lane = self._lanes[first.priority]
            keep: deque[Job] = deque()
            while lane and len(batch) < max_batch:
                job = lane.popleft()
                if job.batch_class == first.batch_class:
                    batch.append(job)
                else:
                    keep.append(job)
            while keep:
                lane.appendleft(keep.pop())
        return batch

    def remove(self, job: Job) -> bool:
        """Withdraw a still-pending job (cancellation); True on success."""
        with self._lock:
            lane = self._lanes[job.priority]
            try:
                lane.remove(job)
                return True
            except ValueError:
                return False

    def depth_by_priority(self) -> dict[str, int]:
        """Pending jobs per priority class."""
        with self._lock:
            return {p: len(lane) for p, lane in self._lanes.items()}

    def close(self) -> None:
        """Stop admitting; wake blocked takers once the queue drains."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
