"""The serving scheduler: batch dispatch, retries, timeouts, exactly-once.

A :class:`Scheduler` owns a persistent pool of worker threads draining a
:class:`~repro.serve.queue.JobQueue`.  Each dispatch pulls a *batch* of
compatible jobs (same priority class + shared inputs — see
``JobQueue.take_batch``), pre-warms the batch's shared requirements
once, then executes jobs with:

- **per-job timeouts** — a job that overruns its ``timeout_s`` is failed
  with status ``timeout`` (the runaway attempt is abandoned to a daemon
  thread; its late result is discarded by the commit guard),
- **retry on worker death** — a :class:`WorkerDeath` raised mid-attempt
  (the chaos-injection hook, standing in for a crashed worker process)
  is retried up to ``job.max_retries`` times with the capped
  exponential-backoff ladder of the resilience layer's
  :class:`~repro.agents.message_center.DeliveryPolicy` — the same
  deterministic full-jitter backoff message delivery uses,
- **exactly-once commitment** — every terminal transition goes through a
  per-job commit guard, so a zombie attempt racing its own retry can
  never double-commit a result, and cancellation observed before commit
  wins over a computed result.

The scheduler is execution-agnostic: the server supplies ``execute(job)``
(scenario lookup + run) and ``on_terminal(job)`` (cache write-back +
subscriber fulfillment).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro import obs
from repro.agents.message_center import DeliveryPolicy
from repro.serve.queue import Job, JobQueue

__all__ = ["WorkerDeath", "JobTimeout", "Scheduler"]


class WorkerDeath(RuntimeError):
    """A worker died mid-attempt (raised by the chaos-injection hook)."""


class JobTimeout(RuntimeError):
    """An attempt overran the job's ``timeout_s``."""


#: default retry backoff — the resilience delivery ladder with a short,
#: jittered base so retries desynchronize without stalling the worker
DEFAULT_RETRY_POLICY = DeliveryPolicy(
    backoff_base=0.005, backoff_cap=0.1, backoff_jitter=True
)


class Scheduler:
    """Persistent worker pool turning queued jobs into committed results.

    ``execute`` runs one job and returns its JSON result; ``on_terminal``
    is called exactly once per job after its terminal transition.
    ``death_injector(job, attempt)`` (tests/chaos) may raise
    :class:`WorkerDeath` to simulate a worker crashing ``"before"`` the
    attempt runs or ``"after"`` it computed but before commitment — the
    two windows where at-most-once and at-least-once delivery disagree.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[Job], Any],
        *,
        workers: int = 2,
        max_batch: int = 4,
        retry_policy: DeliveryPolicy | None = None,
        on_terminal: Callable[[Job], None] | None = None,
        warm_requirement: Callable[[str], None] | None = None,
        death_injector: Callable[[Job, int], str | None] | None = None,
        on_event: Callable[[Job, str, float, dict], None] | None = None,
        metrics: Any = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.queue = queue
        self.execute = execute
        self.workers = workers
        self.max_batch = max_batch
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.on_terminal = on_terminal or (lambda job: None)
        self.warm_requirement = warm_requirement or (lambda req: None)
        self.death_injector = death_injector
        self.on_event = on_event
        #: optional always-on registry (the owning server's) that every
        #: scheduler counter is dual-written to, alongside the global
        #: :mod:`repro.obs` helpers (null unless a window is open)
        self.metrics = metrics
        self.clock = clock
        self.sleep = sleep
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False

    def _inc(self, name: str, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()
        obs.counter(name, **labels).inc()

    def _observe(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, **labels).observe(value)
        obs.histogram(name, **labels).observe(value)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        """True once the worker pool is running."""
        return self._started

    @property
    def alive_workers(self) -> int:
        """How many pool threads are currently alive."""
        return sum(1 for t in self._threads if t.is_alive())

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        if self._started:
            return
        self._started = True
        for wid in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop,
                args=(wid,),
                name=f"serve-worker-{wid}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()

    def stop(self, wait: bool = True) -> None:
        """Close the queue and (optionally) join the workers."""
        self._stopping = True
        self.queue.close()
        if wait:
            for t in self._threads:
                t.join(timeout=10.0)
        self._threads = []
        self._started = False

    # -- worker loop -------------------------------------------------------------

    def _worker_loop(self, wid: int) -> None:
        while True:
            batch = self.queue.take_batch(self.max_batch)
            if not batch:
                return
            self._run_batch(batch, wid)

    def step(self, wid: int = 0) -> int:
        """Take and run one batch without blocking; returns its size.

        This is the cooperative face of the worker loop: the simulation
        harness (:mod:`repro.simtest`) drives parked worker tasks through
        it one dispatch at a time, so the exact same batch/retry/commit
        code runs under a controlled schedule.  Returns 0 when the queue
        had nothing pending.
        """
        batch = self.queue.take_batch(self.max_batch, timeout=0)
        if batch:
            self._run_batch(batch, wid)
        return len(batch)

    def _run_batch(self, batch: list[Job], wid: int) -> None:
        self._inc("serve.batches")
        self._observe("serve.batch_size", len(batch))
        for req in sorted({r for job in batch for r in job.requires}):
            try:
                self.warm_requirement(req)
            except Exception:  # noqa: BLE001 - jobs re-warm and fail solo
                pass
        for job in batch:
            self._run_job(job, wid)

    def _transition(self, job: Job, status: str, *,
                    abandoned_only: bool = False,
                    **event_attrs: Any) -> bool:
        """Commit ``job`` to a terminal ``status`` exactly once.

        Returns False when another path (a racing retry, a cancel, an
        earlier commit) already owns the job — the caller's outcome is
        then discarded.  With ``abandoned_only`` the commit additionally
        requires ``subscribers == 0`` *inside* the locked region: cancel
        commits use it so a same-key submit that re-attaches to the job
        between the caller's check and the commit keeps the job alive.
        """
        with job.lock:
            if job.committed:
                return False
            if abandoned_only and job.subscribers > 0:
                return False
            job.committed = True
            job.status = status
            job.finished_t = self.clock()
        self._event(job, status, **event_attrs)
        job.done.set()
        self.on_terminal(job)
        return True

    def _event(self, job: Job, kind: str, **attrs: Any) -> None:
        t = self.clock()
        job.events.append((kind, t, attrs))
        obs.get_timeline().event(f"serve.{kind}", t, job=f"job-{job.seq}",
                                 scenario=job.name, **attrs)
        if self.on_event is not None:
            self.on_event(job, kind, t, attrs)

    def _run_job(self, job: Job, wid: int) -> None:
        if job.cancel_requested:
            # commits only while the job is abandoned; when a dedup
            # attach re-subscribed after the cancel, fall through and
            # run (the while-loop entry handles an already-committed job)
            if self._transition(job, "cancelled", abandoned_only=True,
                                where="pre-dispatch"):
                self._inc("serve.cancelled", where="pre-dispatch")
                return
        attempt = 0
        while True:
            job.attempts += 1
            with job.lock:
                if job.committed:
                    return
                job.status = "running"
                if job.started_t is None:
                    job.started_t = self.clock()
            self._event(job, "running", attempt=attempt, worker=wid)
            try:
                result = self._attempt(job, attempt)
            except WorkerDeath as death:
                self._inc("serve.worker_deaths")
                self._event(job, "worker-death", attempt=attempt,
                            where=str(death))
                if attempt >= job.max_retries:
                    job.error = (
                        f"worker died {attempt + 1} times (retries exhausted)"
                    )
                    self._transition(job, "failed", reason="worker-death")
                    return
                attempt += 1
                job.retries += 1
                self._inc("serve.retries")
                self.sleep(self.retry_policy.backoff(attempt - 1, key=job.seq))
                continue
            except JobTimeout:
                self._inc("serve.timeouts")
                job.error = f"timed out after {job.timeout_s}s"
                self._transition(job, "timeout")
                return
            except Exception as exc:  # noqa: BLE001 - isolate job failures
                job.error = f"{type(exc).__name__}: {exc}"
                self._transition(job, "failed", reason="exception")
                return
            with job.lock:
                cancelled = (
                    job.cancel_requested
                    and not job.committed
                    and job.subscribers == 0
                )
            if cancelled and self._transition(job, "cancelled",
                                              abandoned_only=True,
                                              where="post-run"):
                self._inc("serve.cancelled", where="post-run")
                return
            job.result = result
            if self._transition(job, "done"):
                self._inc("serve.completed")
            return

    def _attempt(self, job: Job, attempt: int) -> Any:
        """One execution attempt, with death injection and timeout.

        The injector is consulted once per attempt; ``"before"`` kills
        the attempt before any work, ``"after"`` kills it after the
        result was computed but before commitment.
        """
        where = (
            self.death_injector(job, attempt)
            if self.death_injector is not None
            else None
        )
        if where == "before":
            raise WorkerDeath("before")
        if job.timeout_s is None:
            result = self.execute(job)
        else:
            box: dict[str, Any] = {}

            def _call() -> None:
                try:
                    box["result"] = self.execute(job)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    box["error"] = exc

            t = threading.Thread(target=_call, daemon=True,
                                 name=f"serve-attempt-{job.seq}")
            t.start()
            t.join(job.timeout_s)
            if t.is_alive():
                raise JobTimeout()
            if "error" in box:
                raise box["error"]
            result = box["result"]
        if where == "after":
            raise WorkerDeath("after")
        return result
