"""JSONL transports for the scenario server: streams and a local socket.

Two ways to feed a :class:`~repro.serve.server.ScenarioServer`:

- :func:`run_requests` — the one-shot stream mode behind
  ``python -m repro serve`` (stdin or ``--requests FILE``): every line
  is dispatched as it is read, the server drains at end-of-stream, and
  one ``result`` line per submit (in request order) plus a final
  ``stats`` line are emitted.
- :func:`serve_socket` — a local (UNIX-domain) socket accepting
  line-oriented connections; each request line is answered immediately,
  ``result`` waits for a terminal job, and ``shutdown`` stops the
  listener.  One connection per client, many clients at once.

Both share :class:`Session`, which maps client request ids to
:class:`~repro.serve.server.JobHandle`\\ s.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from typing import Any, Callable, Iterable, Iterator, TextIO

from repro.obs.live import CONTENT_TYPE
from repro.serve.protocol import ProtocolError, encode, parse_request
from repro.serve.server import ScenarioServer

__all__ = ["Session", "run_requests", "serve_socket"]


class Session:
    """One client's request-id → job-handle map and dispatch logic.

    ``sleeper`` paces ``stats-stream`` ticks; injecting one (a virtual
    clock's sleep, a fake) makes streaming behavior schedulable in tests
    — the default is real :func:`time.sleep`.
    """

    def __init__(
        self,
        server: ScenarioServer,
        *,
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        self.server = server
        self.sleeper = sleeper if sleeper is not None else time.sleep
        self.handles: dict[str, Any] = {}
        self.order: list[str] = []
        self._auto = 0
        self.shutdown_requested = False

    def _request_id(self, req: dict[str, Any]) -> str:
        rid = req.get("id")
        if rid is None:
            self._auto += 1
            rid = f"req-{self._auto}"
        return str(rid)

    def dispatch(self, req: dict[str, Any]) -> dict[str, Any]:
        """Execute one parsed request; returns the immediate response."""
        op = req["op"]
        if op == "submit":
            rid = self._request_id(req)
            handle = self.server.submit(
                req["scenario"],
                req.get("params"),
                priority=req.get("priority", "normal"),
                timeout_s=req.get("timeout_s"),
                max_retries=req.get("max_retries"),
            )
            self.handles[rid] = handle
            self.order.append(rid)
            resp: dict[str, Any] = {
                "op": "accepted",
                "id": rid,
                "job": handle.job_id,
                "status": handle.status,
            }
            if handle.status == "shed":
                resp["reason"] = handle.record()["error"]
            return resp
        if op == "cancel":
            rid = str(req["id"])
            handle = self.handles.get(rid)
            ok = handle.cancel() if handle is not None else False
            return {"op": "cancel-ack", "id": rid, "ok": ok}
        if op == "result":
            rid = str(req["id"])
            handle = self.handles.get(rid)
            if handle is None:
                return {"op": "error", "id": rid, "error": f"unknown id {rid!r}"}
            handle.wait(req.get("timeout_s"))
            return {"op": "result", "id": rid, **handle.record()}
        if op == "stats":
            return {"op": "stats", "stats": self.server.stats()}
        if op == "metrics":
            return {
                "op": "metrics",
                "content_type": CONTENT_TYPE,
                "text": self.server.scrape_metrics(),
            }
        if op == "health":
            return {"op": "health", **self.server.health().to_dict()}
        if op == "drain":
            idle = self.server.drain(req.get("timeout_s"))
            return {"op": "drained", "idle": idle}
        if op == "shutdown":
            self.shutdown_requested = True
            return {"op": "shutdown-ack"}
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def dispatch_iter(self, req: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Execute one parsed request, yielding one or more responses.

        Every op yields exactly one document except ``stats-stream``,
        which yields ``count`` ``stats-tick`` documents ``interval_s``
        seconds apart — the transports write and flush each as it
        arrives, so a ``python -m repro top`` client renders live.
        """
        if req["op"] != "stats-stream":
            yield self.dispatch(req)
            return
        count = req.get("count", 1)
        interval_s = req.get("interval_s", 0)
        flight_tail = req.get("flight_tail", 20)
        for seq in range(count):
            if seq:
                self.sleeper(interval_s)
            tick = self.server.live_snapshot(flight_tail=flight_tail)
            tick["seq"] = seq
            tick["of"] = count
            yield tick


def run_requests(
    server: ScenarioServer,
    lines: Iterable[str],
    out: TextIO,
    *,
    drain_timeout: float | None = None,
) -> dict[str, Any]:
    """One-shot stream mode: dispatch every line, drain, emit results.

    Emits one response line per request as it is processed, then (after
    the server drains) one ``result`` line per submit in request order
    and a final ``stats`` line.  Blank lines and ``#`` comments are
    skipped; malformed lines produce ``error`` responses without killing
    the stream.  Returns a summary with per-status job counts.
    """
    session = Session(server)
    for line in lines:
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        try:
            req = parse_request(line)
        except ProtocolError as exc:
            print(encode({"op": "error", "error": str(exc)}), file=out)
            continue
        for resp in session.dispatch_iter(req):
            print(encode(resp), file=out, flush=True)
        if session.shutdown_requested:
            break
    server.drain(drain_timeout)
    by_status: dict[str, int] = {}
    for rid in session.order:
        handle = session.handles[rid]
        handle.wait(drain_timeout)
        record = handle.record()
        by_status[record["status"]] = by_status.get(record["status"], 0) + 1
        print(encode({"op": "result", "id": rid, **record}), file=out)
    stats = server.stats()
    print(encode({"op": "stats", "stats": stats}), file=out)
    return {
        "requests": len(session.order),
        "by_status": dict(sorted(by_status.items())),
        "stats": stats,
    }


class _SocketHandler(socketserver.StreamRequestHandler):
    """One JSONL connection: a line in, a response line out."""

    def handle(self) -> None:  # pragma: no cover - exercised via socket test
        session = Session(self.server.scenario_server)  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            try:
                req = parse_request(line)
            except ProtocolError as exc:
                self.wfile.write(
                    (encode({"op": "error", "error": str(exc)}) + "\n").encode()
                )
                self.wfile.flush()
                continue
            # write-and-flush per document, so stats-stream ticks reach
            # the client as they are produced, not at stream end
            for resp in session.dispatch_iter(req):
                self.wfile.write((encode(resp) + "\n").encode())
                self.wfile.flush()
            if session.shutdown_requested:
                self.server.shutdown_event.set()  # type: ignore[attr-defined]
                return


class _ThreadingUnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


def serve_socket(
    server: ScenarioServer,
    path: str,
    *,
    ready: threading.Event | None = None,
) -> None:
    """Serve JSONL connections on a UNIX-domain socket at ``path``.

    Blocks until a client sends ``{"op": "shutdown"}``.  The scenario
    server itself is shut down by the caller, not here.  A pre-existing
    socket file at ``path`` (a previous run, or a crash that never
    cleaned up) is unlinked before binding — SO_REUSEADDR does nothing
    for AF_UNIX — and the file is removed again on exit.

    ``ready`` (when given) is set once the socket is bound and
    listening, so a caller running this in a thread can connect
    immediately instead of polling the filesystem with sleeps.
    """
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    sock = _ThreadingUnixServer(path, _SocketHandler)
    sock.scenario_server = server  # type: ignore[attr-defined]
    sock.shutdown_event = threading.Event()  # type: ignore[attr-defined]
    listener = threading.Thread(target=sock.serve_forever, daemon=True)
    listener.start()
    if ready is not None:
        ready.set()
    try:
        sock.shutdown_event.wait()  # type: ignore[attr-defined]
    finally:
        sock.shutdown()
        sock.server_close()
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
