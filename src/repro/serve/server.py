"""The long-running scenario server and its client API.

:class:`ScenarioServer` layers the serving runtime on the sweep engine:
requests name a registered :class:`~repro.sweep.scenario.Scenario`
(optionally with parameter overrides), are admitted through the bounded
:class:`~repro.serve.queue.JobQueue` (or shed with an explicit reason),
coalesced by content-address onto one execution when identical requests
are already pending (the sweep cache key *is* the dedup key), batched
per worker dispatch, and executed by the
:class:`~repro.serve.scheduler.Scheduler`'s persistent pool with
timeouts, cancellation and retry-on-worker-death.  Completed results are
written to a result cache (in-memory by default, the on-disk sweep
:class:`~repro.sweep.cache.ResultCache` when ``cache_dir`` is given), so
repeat requests are served without re-execution.

Clients hold a :class:`JobHandle`: ``result()`` blocks for the outcome
(raising :class:`~repro.serve.queue.ShedError` /
:class:`~repro.serve.queue.JobCancelled` /
:class:`~repro.serve.queue.JobFailed` as appropriate), ``cancel()``
withdraws a pending request, ``record()`` snapshots the job document.
:class:`ServerHandle` is the stable public facade over a server —
``submit`` / ``cancel`` / ``drain`` / ``stats`` / ``shutdown`` — the
surface exported through :mod:`repro.api`.

Progress is streamed three ways at once: per-job event logs, the
:mod:`repro.obs` timeline (``serve.*`` events) and counters
(``serve.submitted`` / ``serve.shed{reason}`` / ``serve.dedup_hits`` /
...), and optional push listeners (the JSONL transports in
:mod:`repro.serve.jsonl` subscribe one to stream events to clients).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro import obs
from repro.agents.message_center import DeliveryPolicy
from repro.partitioners import deterministic_partition_time
from repro.serve.protocol import PRIORITIES
from repro.serve.queue import (
    SHED_SHUTTING_DOWN,
    SHED_UNKNOWN_SCENARIO,
    Job,
    JobCancelled,
    JobFailed,
    JobQueue,
    ShedError,
)
from repro.serve.scheduler import Scheduler
from repro.sweep.cache import ResultCache, cache_key
from repro.sweep.runner import (
    DEFAULT_SCENARIO_MODULES,
    _import_scenario_modules,
    _warm_requirement,
)
from repro.sweep.scenario import (
    ScenarioContext,
    derive_seed,
    get_scenario,
    jsonify,
)

__all__ = ["JobHandle", "ScenarioServer", "ServerHandle"]


class _MemoryCache:
    """Dict-backed stand-in for :class:`ResultCache` (default, no disk)."""

    def __init__(self) -> None:
        self._docs: dict[str, dict[str, Any]] = {}
        self.directory = None

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached document for ``key``, or ``None`` on a miss."""
        return self._docs.get(key)

    def put(self, key: str, document: dict[str, Any]) -> None:
        """Store ``document`` under ``key``."""
        self._docs[key] = document

    def __len__(self) -> int:
        return len(self._docs)


class JobHandle:
    """A client's view of one submitted request.

    Multiple handles may share one underlying job (request coalescing);
    cancelling a shared handle only detaches this client.
    """

    def __init__(self, job: Job, server: "ScenarioServer") -> None:
        self._job = job
        self._server = server
        self._detached = False

    @property
    def job_id(self) -> str:
        """Server-assigned job identifier (``job-<seq>``)."""
        return f"job-{self._job.seq}"

    @property
    def key(self) -> str:
        """The job's content-address (the sweep cache key)."""
        return self._job.key

    @property
    def status(self) -> str:
        """Current job status (``cancelled`` for a detached handle)."""
        if self._detached:
            return "cancelled"
        return self._job.status

    @property
    def done(self) -> bool:
        """True once the job (or this handle's detachment) is terminal."""
        return self._detached or self._job.terminal

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; True when the job finished in time."""
        if self._detached:
            return True
        return self._job.done.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The job's result, blocking up to ``timeout`` seconds.

        Raises :class:`ShedError` for shed requests,
        :class:`JobCancelled` for cancelled ones, :class:`JobFailed` for
        failures and timeouts, and :class:`TimeoutError` when the wait
        itself expires.
        """
        if self._detached:
            raise JobCancelled(f"{self.job_id} cancelled by this client")
        if not self._job.done.wait(timeout):
            raise TimeoutError(
                f"{self.job_id} still {self._job.status!r} after {timeout}s"
            )
        job = self._job
        if job.status == "done":
            return job.result
        if job.status == "shed":
            raise ShedError(job.error or "shed")
        if job.status == "cancelled":
            raise JobCancelled(f"{self.job_id} was cancelled")
        raise JobFailed(f"{self.job_id} {job.status}: {job.error}")

    def cancel(self) -> bool:
        """Withdraw this request; True when anything was cancelled.

        A pending sole-subscriber job is removed from the queue and
        terminalized; a running one gets a cooperative cancel flag (its
        result is discarded if the flag wins the commit race).  When
        other clients share the job, only this handle detaches.
        """
        if self._detached or self._job.terminal:
            return False
        ok = self._server._cancel(self._job)
        if ok:
            self._detached = True
        return ok

    def events(self) -> list[dict[str, Any]]:
        """The job's event log as JSON-ready records."""
        return [
            {"kind": kind, "t": t, **attrs}
            for kind, t, attrs in list(self._job.events)
        ]

    def record(self) -> dict[str, Any]:
        """Snapshot of the job document (the protocol's result shape)."""
        doc = self._job.to_dict()
        if self._detached:
            doc["status"] = "cancelled"
        return doc


class ScenarioServer:
    """The concurrent scenario-serving runtime.

    ``workers`` threads drain a ``queue_capacity``-bounded priority
    queue in batches of up to ``max_batch`` compatible jobs.  With
    ``start=False`` the pool stays parked until :meth:`start` — the
    deterministic mode tests and benchmarks use to fill the queue before
    any draining happens.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_capacity: int = 64,
        max_batch: int = 4,
        base_seed: int = 0,
        cache: ResultCache | _MemoryCache | None = None,
        cache_dir: str | None = None,
        use_cache: bool = True,
        retry_policy: DeliveryPolicy | None = None,
        max_retries: int = 2,
        default_timeout_s: float | None = None,
        scenario_modules: Sequence[str] = DEFAULT_SCENARIO_MODULES,
        death_injector: Callable[[Job, int], str | None] | None = None,
        start: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        _import_scenario_modules(scenario_modules)
        self.base_seed = base_seed
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.max_retries = max_retries
        self.default_timeout_s = default_timeout_s
        if cache is not None:
            self.cache = cache
        elif cache_dir is not None:
            self.cache = ResultCache(Path(cache_dir) / "serve")
        else:
            self.cache = _MemoryCache()
        self.queue = JobQueue(queue_capacity)
        self.scheduler = Scheduler(
            self.queue,
            self._execute_job,
            workers=workers,
            max_batch=max_batch,
            retry_policy=retry_policy,
            on_terminal=self._on_terminal,
            warm_requirement=self._warm,
            death_injector=death_injector,
            on_event=self._notify,
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: dict[str, Job] = {}
        self._stats: dict[str, int] = {}
        self._listeners: list[Callable[[Job, str, float, dict], None]] = []
        self._seq = 0
        self._closed = False
        self._epoch = time.perf_counter()
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        self.scheduler.start()

    @property
    def running(self) -> bool:
        """True while the worker pool is up and admission is open."""
        return self.scheduler.started and not self._closed

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is pending or running; True when idle."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._idle:
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop admission, drain the queue and join the workers."""
        with self._lock:
            self._closed = True
        self.scheduler.stop(wait=wait)

    def __enter__(self) -> "ScenarioServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- submission --------------------------------------------------------------

    def _count(self, stat: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[stat] = self._stats.get(stat, 0) + amount

    def _notify(self, job: Job, kind: str, t: float, attrs: dict) -> None:
        for listener in list(self._listeners):
            try:
                listener(job, kind, t, attrs)
            except Exception:  # noqa: BLE001 - listeners cannot kill workers
                pass

    def add_listener(
        self, listener: Callable[[Job, str, float, dict], None]
    ) -> None:
        """Subscribe a push listener to every job event."""
        self._listeners.append(listener)

    def _emit(self, job: Job, kind: str, **attrs: Any) -> None:
        t = time.perf_counter()
        job.events.append((kind, t, attrs))
        obs.get_timeline().event(f"serve.{kind}", t, job=f"job-{job.seq}",
                                 scenario=job.name, **attrs)
        self._notify(job, kind, t, attrs)

    def _make_job(self, name: str, params: dict[str, Any],
                  priority: str) -> Job:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return Job(
            name=name, params=params, priority=priority, seq=seq,
            submitted_t=time.perf_counter(),
        )

    def _shed_job(self, job: Job, reason: str) -> JobHandle:
        job.status = "shed"
        job.error = reason
        job.finished_t = time.perf_counter()
        job.committed = True
        job.done.set()
        self._count("shed")
        self._count(f"shed:{reason}")
        obs.counter("serve.shed", reason=reason).inc()
        self._emit(job, "shed", reason=reason)
        return JobHandle(job, self)

    def submit(
        self,
        name: str,
        params: dict[str, Any] | None = None,
        *,
        priority: str = "normal",
        timeout_s: float | None = None,
        max_retries: int | None = None,
    ) -> JobHandle:
        """Submit one scenario request; never blocks, never raises on load.

        Admission control is explicit: a saturated queue, a closed
        server or an unknown scenario name produce a handle whose status
        is ``shed`` (with the machine-readable reason) rather than an
        exception or an unbounded wait.  Identical pending requests —
        same scenario, same merged parameters — coalesce onto one
        execution, and previously computed results are served from the
        result cache without executing anything.

        An unknown ``priority`` is a usage error (not load) and raises
        :class:`ValueError` — mirroring the JSONL protocol layer's
        request validation.
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; "
                f"expected one of {list(PRIORITIES)}"
            )
        self._count("submitted")
        obs.counter("serve.submitted", priority=priority).inc()
        try:
            scenario = get_scenario(name)
        except KeyError:
            job = self._make_job(name, dict(params or {}), priority)
            return self._shed_job(job, SHED_UNKNOWN_SCENARIO)
        merged = {**scenario.params, **(params or {})}
        key = cache_key(name, merged, version=scenario.version)
        job = self._make_job(name, merged, priority)
        job.key = key
        job.seed = derive_seed(name, merged, self.base_seed)
        job.timeout_s = timeout_s if timeout_s is not None else self.default_timeout_s
        job.max_retries = (
            max_retries if max_retries is not None else self.max_retries
        )
        job.requires = tuple(scenario.requires)

        if self._closed:
            return self._shed_job(job, SHED_SHUTTING_DOWN)

        if self.use_cache:
            doc = self.cache.get(key)
            if doc is not None:
                job.status = "done"
                job.result = doc.get("result")
                job.cached = True
                job.committed = True
                job.finished_t = time.perf_counter()
                job.done.set()
                self._count("cache_hits")
                obs.counter("serve.cache_hits").inc()
                self._emit(job, "cache-hit")
                return JobHandle(job, self)

        # One locked region covers the twin lookup, the queue offer and
        # the inflight insert, so two racing submits of the same key can
        # never both admit an execution.  The subscriber count is guarded
        # by the job's own lock (like _cancel's decrement), and committed
        # is re-checked under it so we never attach to a job a racing
        # cancel/commit is terminalizing.
        with self._lock:
            twin = self._inflight.get(key)
            if twin is not None:
                with twin.lock:
                    if twin.committed:
                        twin = None
                    else:
                        twin.subscribers += 1
            if twin is not None:
                self._stats["dedup_hits"] = self._stats.get("dedup_hits", 0) + 1
                reason = None
            else:
                reason = self.queue.offer(job)
                if reason is None:
                    self._inflight[key] = job
                    self._stats["admitted"] = self._stats.get("admitted", 0) + 1
        if twin is not None:
            obs.counter("serve.dedup_hits").inc()
            self._emit(twin, "dedup-attach", subscribers=twin.subscribers)
            return JobHandle(twin, self)
        if reason is not None:
            return self._shed_job(job, reason)
        obs.counter("serve.admitted", priority=priority).inc()
        self._emit(job, "queued", priority=priority)
        return JobHandle(job, self)

    def submit_many(
        self, requests: Sequence[dict[str, Any]]
    ) -> list[JobHandle]:
        """Submit a batch of request documents; returns handles in order."""
        return [
            self.submit(
                req["scenario"],
                req.get("params"),
                priority=req.get("priority", "normal"),
                timeout_s=req.get("timeout_s"),
                max_retries=req.get("max_retries"),
            )
            for req in requests
        ]

    # -- cancellation ------------------------------------------------------------

    def _finalize(self, job: Job, status: str, **attrs: Any) -> bool:
        """Terminalize a job outside the scheduler (exactly-once guard)."""
        with job.lock:
            if job.committed:
                return False
            job.committed = True
            job.status = status
            job.finished_t = time.perf_counter()
        self._emit(job, status, **attrs)
        job.done.set()
        self._on_terminal(job)
        return True

    def _cancel(self, job: Job) -> bool:
        with job.lock:
            if job.committed:
                return False
            job.subscribers -= 1
            sole = job.subscribers <= 0
            if sole:
                job.cancel_requested = True
        if not sole:
            self._emit(job, "detach", subscribers=job.subscribers)
            return True
        if self.queue.remove(job):
            # still pending: terminalize right here
            if self._finalize(job, "cancelled", where="pending"):
                self._count("cancelled")
                obs.counter("serve.cancelled", where="pending").inc()
            return True
        # already running: the cooperative flag wins or loses the commit
        # race in the scheduler's post-run check
        self._emit(job, "cancel-requested")
        self._count("cancel_requested")
        return True

    # -- execution (called from worker threads) ----------------------------------

    def _warm(self, req: str) -> None:
        _warm_requirement(
            req, Path(self.cache_dir) if self.cache_dir else None
        )

    def _execute_job(self, job: Job) -> Any:
        scenario = get_scenario(job.name)
        ctx = ScenarioContext(
            params=dict(job.params),
            seed=job.seed,
            cache_dir=Path(self.cache_dir) if self.cache_dir else None,
        )
        with obs.span("serve.job", scenario=job.name), \
                deterministic_partition_time():
            return jsonify(scenario.run(ctx))

    def _on_terminal(self, job: Job) -> None:
        if job.status == "done" and not job.cached:
            self._count("executions")
            if self.use_cache:
                self.cache.put(job.key, {
                    "scenario": job.name,
                    "params": dict(job.params),
                    "seed": job.seed,
                    "result": job.result,
                })
        if job.status in ("failed", "timeout"):
            self._count(job.status)
        if job.status == "done":
            self._count("completed")
        if job.wait_s is not None:
            obs.histogram("serve.job_wait_seconds").observe(job.wait_s)
        with self._idle:
            # Identity-checked: a racing submit may have re-admitted this
            # key after we went terminal but before this pop ran — popping
            # blindly would orphan the new job's dedup/drain entry.
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            if not self._inflight:
                self._idle.notify_all()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Snapshot of the server's counters and queue state."""
        with self._lock:
            counters = dict(sorted(self._stats.items()))
            inflight = len(self._inflight)
        return {
            "counters": counters,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "queue_by_priority": self.queue.depth_by_priority(),
            "inflight": inflight,
            "workers": self.scheduler.workers,
            "max_batch": self.scheduler.max_batch,
            "running": self.running,
            "uptime_wall_s": time.perf_counter() - self._epoch,
        }


class ServerHandle:
    """The stable client facade over a :class:`ScenarioServer`.

    This is the surface :mod:`repro.api` exports: construct one (it owns
    a private server built from the given knobs, or wraps an existing
    ``server=``), ``submit`` requests, ``drain``, read ``stats``, and
    ``close`` — usable as a context manager::

        with ServerHandle(workers=4) as pragma:
            handle = pragma.submit("table2", priority="high")
            print(handle.result(timeout=60))
    """

    def __init__(self, server: ScenarioServer | None = None, **kwargs: Any) -> None:
        self._server = server if server is not None else ScenarioServer(**kwargs)

    @property
    def server(self) -> ScenarioServer:
        """The underlying server (advanced access)."""
        return self._server

    def submit(self, name: str, params: dict[str, Any] | None = None,
               **kwargs: Any) -> JobHandle:
        """Submit one scenario request (see :meth:`ScenarioServer.submit`)."""
        return self._server.submit(name, params, **kwargs)

    def submit_many(self, requests: Sequence[dict[str, Any]]) -> list[JobHandle]:
        """Submit a batch of request documents; handles in order."""
        return self._server.submit_many(requests)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the server is idle; True when it drained in time."""
        return self._server.drain(timeout)

    def stats(self) -> dict[str, Any]:
        """Server counter/queue snapshot."""
        return self._server.stats()

    def close(self) -> None:
        """Shut the server down (graceful: drains admitted work)."""
        self._server.shutdown()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
