"""The long-running scenario server and its client API.

:class:`ScenarioServer` layers the serving runtime on the sweep engine:
requests name a registered :class:`~repro.sweep.scenario.Scenario`
(optionally with parameter overrides), are admitted through the bounded
:class:`~repro.serve.queue.JobQueue` (or shed with an explicit reason),
coalesced by content-address onto one execution when identical requests
are already pending (the sweep cache key *is* the dedup key), batched
per worker dispatch, and executed by the
:class:`~repro.serve.scheduler.Scheduler`'s persistent pool with
timeouts, cancellation and retry-on-worker-death.  Completed results are
written to a result cache (in-memory by default, the on-disk sweep
:class:`~repro.sweep.cache.ResultCache` when ``cache_dir`` is given), so
repeat requests are served without re-execution.

Clients hold a :class:`JobHandle`: ``result()`` blocks for the outcome
(raising :class:`~repro.serve.queue.ShedError` /
:class:`~repro.serve.queue.JobCancelled` /
:class:`~repro.serve.queue.JobFailed` as appropriate), ``cancel()``
withdraws a pending request, ``record()`` snapshots the job document.
:class:`ServerHandle` is the stable public facade over a server —
``submit`` / ``cancel`` / ``drain`` / ``stats`` / ``shutdown`` — the
surface exported through :mod:`repro.api`.

Progress is streamed three ways at once: per-job event logs, the
:mod:`repro.obs` timeline (``serve.*`` events) and counters
(``serve.submitted`` / ``serve.shed{reason}`` / ``serve.dedup_hits`` /
...), and optional push listeners (the JSONL transports in
:mod:`repro.serve.jsonl` subscribe one to stream events to clients).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro import obs
from repro.agents.message_center import DeliveryPolicy
from repro.config import LiveObsOptions
from repro.obs.live import HealthStatus, SnapshotExporter
from repro.obs.metrics import MetricsRegistry
from repro.partitioners import deterministic_partition_time
from repro.serve.protocol import PRIORITIES
from repro.serve.queue import (
    SHED_QUEUE_FULL,
    SHED_SHUTTING_DOWN,
    SHED_UNKNOWN_SCENARIO,
    Job,
    JobCancelled,
    JobFailed,
    JobQueue,
    ShedError,
)
from repro.serve.scheduler import Scheduler
from repro.sweep.cache import ResultCache, cache_key
from repro.sweep.runner import (
    DEFAULT_SCENARIO_MODULES,
    _import_scenario_modules,
    _warm_requirement,
)
from repro.sweep.scenario import (
    ScenarioContext,
    derive_seed,
    get_scenario,
    jsonify,
)

__all__ = ["JobHandle", "ScenarioServer", "ServerHandle"]


class _MemoryCache:
    """Dict-backed stand-in for :class:`ResultCache` (default, no disk)."""

    def __init__(self) -> None:
        self._docs: dict[str, dict[str, Any]] = {}
        self.directory = None

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached document for ``key``, or ``None`` on a miss."""
        return self._docs.get(key)

    def put(self, key: str, document: dict[str, Any]) -> None:
        """Store ``document`` under ``key``."""
        self._docs[key] = document

    def __len__(self) -> int:
        return len(self._docs)


class JobHandle:
    """A client's view of one submitted request.

    Multiple handles may share one underlying job (request coalescing);
    cancelling a shared handle only detaches this client.
    """

    def __init__(self, job: Job, server: "ScenarioServer") -> None:
        self._job = job
        self._server = server
        self._detached = False
        self._cancelling = False

    @property
    def job_id(self) -> str:
        """Server-assigned job identifier (``job-<seq>``)."""
        return f"job-{self._job.seq}"

    @property
    def key(self) -> str:
        """The job's content-address (the sweep cache key)."""
        return self._job.key

    @property
    def status(self) -> str:
        """Current job status (``cancelled`` for a detached handle)."""
        if self._detached:
            return "cancelled"
        return self._job.status

    @property
    def done(self) -> bool:
        """True once the job (or this handle's detachment) is terminal."""
        return self._detached or self._job.terminal

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; True when the job finished in time."""
        if self._detached:
            return True
        return self._job.done.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The job's result, blocking up to ``timeout`` seconds.

        Raises :class:`ShedError` for shed requests,
        :class:`JobCancelled` for cancelled ones, :class:`JobFailed` for
        failures and timeouts, and :class:`TimeoutError` when the wait
        itself expires.
        """
        if self._detached:
            raise JobCancelled(f"{self.job_id} cancelled by this client")
        if not self._job.done.wait(timeout):
            raise TimeoutError(
                f"{self.job_id} still {self._job.status!r} after {timeout}s"
            )
        job = self._job
        if job.status == "done":
            return job.result
        if job.status == "shed":
            raise ShedError(job.error or "shed")
        if job.status == "cancelled":
            raise JobCancelled(f"{self.job_id} was cancelled")
        raise JobFailed(f"{self.job_id} {job.status}: {job.error}")

    def cancel(self) -> bool:
        """Withdraw this request; True when anything was cancelled.

        A pending sole-subscriber job is removed from the queue and
        terminalized; a running one gets a cooperative cancel flag (its
        result is discarded if the flag wins the commit race).  When
        other clients share the job, only this handle detaches.

        Safe to call from multiple threads: the handle represents one
        subscriber slot, so exactly one concurrent ``cancel()`` may
        reach the server's decrement — the claim below is taken under
        the job lock before any blocking work.  (The simulation harness
        found the unguarded version double-decrementing the subscriber
        count when a second cancel slipped in between the first one's
        decrement and its ``_detached`` update.)
        """
        with self._job.lock:
            if self._detached or self._cancelling or self._job.committed:
                return False
            self._cancelling = True
        ok = self._server._cancel(self._job)
        with self._job.lock:
            self._cancelling = False
            if ok:
                self._detached = True
        return ok

    def events(self) -> list[dict[str, Any]]:
        """The job's event log as JSON-ready records."""
        return [
            {"kind": kind, "t": t, **attrs}
            for kind, t, attrs in list(self._job.events)
        ]

    def record(self) -> dict[str, Any]:
        """Snapshot of the job document (the protocol's result shape)."""
        doc = self._job.to_dict()
        if self._detached:
            doc["status"] = "cancelled"
        return doc


class ScenarioServer:
    """The concurrent scenario-serving runtime.

    ``workers`` threads drain a ``queue_capacity``-bounded priority
    queue in batches of up to ``max_batch`` compatible jobs.  With
    ``start=False`` the pool stays parked until :meth:`start` — the
    deterministic mode tests and benchmarks use to fill the queue before
    any draining happens.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_capacity: int = 64,
        max_batch: int = 4,
        base_seed: int = 0,
        cache: ResultCache | _MemoryCache | None = None,
        cache_dir: str | None = None,
        use_cache: bool = True,
        retry_policy: DeliveryPolicy | None = None,
        max_retries: int = 2,
        default_timeout_s: float | None = None,
        scenario_modules: Sequence[str] = DEFAULT_SCENARIO_MODULES,
        death_injector: Callable[[Job, int], str | None] | None = None,
        live_obs: LiveObsOptions | None = None,
        clock: Callable[[], float] | None = None,
        sleeper: Callable[[float], None] | None = None,
        start: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        _import_scenario_modules(scenario_modules)
        #: the server's one time source.  Every timestamp the runtime
        #: takes — submit/start/finish marks, event times, uptime, drain
        #: deadlines, commit-age health checks, the snapshot exporter —
        #: reads this single injected clock, so a virtual clock
        #: (:mod:`repro.simtest`) governs all windows at once.  The
        #: default is real monotonic time; production behavior is
        #: unchanged.
        self.clock = clock if clock is not None else time.monotonic
        self.sleeper = sleeper if sleeper is not None else time.sleep
        self.base_seed = base_seed
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.max_retries = max_retries
        self.default_timeout_s = default_timeout_s
        if cache is not None:
            self.cache = cache
        elif cache_dir is not None:
            self.cache = ResultCache(Path(cache_dir) / "serve")
        else:
            self.cache = _MemoryCache()
        #: the server's own always-on registry — the one source of truth
        #: behind :meth:`stats`, the ``metrics`` exposition endpoint and
        #: the live dashboard (``serve.*`` counters are dual-written to
        #: the process-global :mod:`repro.obs` registry too, so scoped
        #: collection windows and run reports keep seeing them)
        self.metrics = MetricsRegistry()
        self.live_obs = live_obs if live_obs is not None else LiveObsOptions()
        self._flight = self.live_obs.build_flight_recorder(
            wall_clock=self.clock if clock is not None else None
        )
        self._slo = (
            self.live_obs.build_slo_tracker()
            if self.live_obs.enabled else None
        )
        #: sliding window for dashboard latency quantiles (recent
        #: traffic); ``None`` = cumulative when live obs is off
        self._latency_window = (
            self.live_obs.slo_long_window if self.live_obs.enabled else None
        )
        self.queue = JobQueue(queue_capacity)
        self.scheduler = Scheduler(
            self.queue,
            self._execute_job,
            workers=workers,
            max_batch=max_batch,
            retry_policy=retry_policy,
            on_terminal=self._on_terminal,
            warm_requirement=self._warm,
            death_injector=death_injector,
            on_event=self._notify,
            metrics=self.metrics,
            clock=self.clock,
            sleep=self.sleeper,
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: dict[str, Job] = {}
        self._listeners: list[Callable[[Job, str, float, dict], None]] = []
        self._seq = 0
        self._closed = False
        self._epoch = self.clock()
        self._last_commit_t: float | None = None
        self._exporter: SnapshotExporter | None = None
        if self.live_obs.enabled and self.live_obs.snapshot_path is not None:
            self._exporter = SnapshotExporter(
                self.metrics,
                self.live_obs.snapshot_path,
                interval_s=self.live_obs.snapshot_interval_s,
                extra=lambda: {"stats": self.stats()},
                clock=self.clock,
                wall_clock=self.clock if clock is not None else None,
            )
            self._exporter.start()
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        self.scheduler.start()

    @property
    def running(self) -> bool:
        """True while the worker pool is up and admission is open."""
        return self.scheduler.started and not self._closed

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is pending or running; True when idle."""
        deadline = None if timeout is None else self.clock() + timeout
        with self._idle:
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.clock()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop admission, drain the queue and join the workers.

        The live plane winds down with the server: the snapshot exporter
        flushes a final record and the flight recorder dumps to its
        configured path (when one is set).
        """
        with self._lock:
            self._closed = True
        self.scheduler.stop(wait=wait)
        if self._exporter is not None:
            self._exporter.stop()
            self._exporter = None
        self.dump_flight()

    def __enter__(self) -> "ScenarioServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- submission --------------------------------------------------------------

    def _inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Bump ``serve.<name>`` on the server registry *and* the global one.

        The server's own registry backs :meth:`stats` and the live
        exposition endpoints; the global :mod:`repro.obs` registry (null
        unless a collection window is open) keeps run reports seeing the
        same counters.
        """
        self.metrics.counter(name, **labels).inc(amount)
        obs.counter(name, **labels).inc(amount)

    def _notify(self, job: Job, kind: str, t: float, attrs: dict) -> None:
        # every job event funnels through here — both the server's own
        # _emit and the scheduler's _event — so this is the one flight
        # recorder tap point
        if self._flight.enabled:
            # event attrs win over the job-derived fields (e.g. the
            # "queued" event already carries priority)
            self._flight.record(kind, t, **{
                "job": f"job-{job.seq}", "scenario": job.name,
                "priority": job.priority, **attrs,
            })
        for listener in list(self._listeners):
            try:
                listener(job, kind, t, attrs)
            except Exception:  # noqa: BLE001 - listeners cannot kill workers
                pass

    def add_listener(
        self, listener: Callable[[Job, str, float, dict], None]
    ) -> None:
        """Subscribe a push listener to every job event."""
        self._listeners.append(listener)

    def _emit(self, job: Job, kind: str, **attrs: Any) -> None:
        t = self.clock()
        job.events.append((kind, t, attrs))
        obs.get_timeline().event(f"serve.{kind}", t, job=f"job-{job.seq}",
                                 scenario=job.name, **attrs)
        self._notify(job, kind, t, attrs)

    def _make_job(self, name: str, params: dict[str, Any],
                  priority: str) -> Job:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return Job(
            name=name, params=params, priority=priority, seq=seq,
            submitted_t=self.clock(),
        )

    def _shed_job(self, job: Job, reason: str) -> JobHandle:
        job.status = "shed"
        job.error = reason
        job.finished_t = self.clock()
        job.committed = True
        job.done.set()
        self._inc("serve.shed", reason=reason)
        if self._slo is not None:
            # unknown-scenario refusals are client errors, not load
            self._slo.record_admission(
                job.priority,
                shed=reason in (SHED_QUEUE_FULL, SHED_SHUTTING_DOWN),
            )
        self._emit(job, "shed", reason=reason)
        return JobHandle(job, self)

    def submit(
        self,
        name: str,
        params: dict[str, Any] | None = None,
        *,
        priority: str = "normal",
        timeout_s: float | None = None,
        max_retries: int | None = None,
    ) -> JobHandle:
        """Submit one scenario request; never blocks, never raises on load.

        Admission control is explicit: a saturated queue, a closed
        server or an unknown scenario name produce a handle whose status
        is ``shed`` (with the machine-readable reason) rather than an
        exception or an unbounded wait.  Identical pending requests —
        same scenario, same merged parameters — coalesce onto one
        execution, and previously computed results are served from the
        result cache without executing anything.

        An unknown ``priority`` is a usage error (not load) and raises
        :class:`ValueError` — mirroring the JSONL protocol layer's
        request validation.
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; "
                f"expected one of {list(PRIORITIES)}"
            )
        self._inc("serve.submitted", priority=priority)
        try:
            scenario = get_scenario(name)
        except KeyError:
            job = self._make_job(name, dict(params or {}), priority)
            return self._shed_job(job, SHED_UNKNOWN_SCENARIO)
        merged = {**scenario.params, **(params or {})}
        key = cache_key(name, merged, version=scenario.version)
        job = self._make_job(name, merged, priority)
        job.key = key
        job.seed = derive_seed(name, merged, self.base_seed)
        job.timeout_s = timeout_s if timeout_s is not None else self.default_timeout_s
        job.max_retries = (
            max_retries if max_retries is not None else self.max_retries
        )
        job.requires = tuple(scenario.requires)

        if self._closed:
            return self._shed_job(job, SHED_SHUTTING_DOWN)

        if self.use_cache:
            doc = self.cache.get(key)
            if doc is not None:
                job.status = "done"
                job.result = doc.get("result")
                job.cached = True
                job.committed = True
                job.finished_t = self.clock()
                job.done.set()
                self._inc("serve.cache_hits")
                if self._slo is not None:
                    self._slo.record_admission(priority, shed=False)
                    self._slo.record_latency(
                        priority, job.finished_t - job.submitted_t
                    )
                self._emit(job, "cache-hit")
                return JobHandle(job, self)

        # One locked region covers the twin lookup, the queue offer and
        # the inflight insert, so two racing submits of the same key can
        # never both admit an execution.  The subscriber count is guarded
        # by the job's own lock (like _cancel's decrement), and committed
        # is re-checked under it so we never attach to a job a racing
        # cancel/commit is terminalizing.
        with self._lock:
            twin = self._inflight.get(key)
            if twin is not None and not self._attach_twin(twin):
                twin = None
            if twin is not None:
                reason = None
            else:
                reason = self.queue.offer(job)
                if reason is None:
                    self._inflight[key] = job
        if twin is not None:
            self._inc("serve.dedup_hits")
            if self._slo is not None:
                self._slo.record_admission(priority, shed=False)
            self._emit(twin, "dedup-attach", subscribers=twin.subscribers)
            return JobHandle(twin, self)
        if reason is not None:
            return self._shed_job(job, reason)
        self._inc("serve.admitted", priority=priority)
        if self._slo is not None:
            self._slo.record_admission(priority, shed=False)
        self._emit(job, "queued", priority=priority)
        return JobHandle(job, self)

    def submit_many(
        self, requests: Sequence[dict[str, Any]]
    ) -> list[JobHandle]:
        """Submit a batch of request documents; returns handles in order."""
        return [
            self.submit(
                req["scenario"],
                req.get("params"),
                priority=req.get("priority", "normal"),
                timeout_s=req.get("timeout_s"),
                max_retries=req.get("max_retries"),
            )
            for req in requests
        ]

    def _attach_twin(self, twin: Job) -> bool:
        """Attach a new subscriber to a pending twin; False if it is gone.

        Runs under :attr:`_lock`.  The subscriber bump is taken under the
        twin's own lock with ``committed`` re-checked inside it, so a
        racing cancel/commit can never hand this client a dead twin —
        the exact race class the simulation harness's regression seeds
        pin down (see ``tests/test_simtest.py``).
        """
        with twin.lock:
            if twin.committed:
                return False
            twin.subscribers += 1
        return True

    # -- cancellation ------------------------------------------------------------

    def _cancel(self, job: Job) -> bool:
        """Detach one subscriber; terminalize the job when it was the last.

        The whole decision — decrement, last-subscriber check, and (for
        a job that has not started running) the ``cancelled`` commit —
        happens under the job's own lock, the same lock
        :meth:`_attach_twin` re-checks ``committed`` under.  Splitting
        the commit from the subscriber check leaves a window where a
        racing same-key submit attaches to the job *after* the decrement
        and then watches it get cancelled out from under it — the
        phantom-cancel race the simulation harness pins down.
        """
        pending_commit = False
        with job.lock:
            if job.committed:
                return False
            job.subscribers -= 1
            sole = job.subscribers <= 0
            if sole:
                job.cancel_requested = True
                if job.status == "queued":
                    # not started (still queued, or taken into a batch
                    # the worker has not dispatched): commit here,
                    # atomically with the subscriber check
                    job.committed = True
                    job.status = "cancelled"
                    job.finished_t = self.clock()
                    pending_commit = True
        if not sole:
            self._emit(job, "detach", subscribers=job.subscribers)
            return True
        if pending_commit:
            # a worker's take_batch may have grabbed the job already;
            # its pre-dispatch check sees ``committed`` and drops it
            self.queue.remove(job)
            self._emit(job, "cancelled", where="pending")
            job.done.set()
            self._on_terminal(job)
            self._inc("serve.cancelled", where="pending")
            return True
        # already running: the cooperative flag wins or loses the commit
        # race in the scheduler's post-run check
        self._emit(job, "cancel-requested")
        self._inc("serve.cancel_requested")
        return True

    # -- execution (called from worker threads) ----------------------------------

    def _warm(self, req: str) -> None:
        _warm_requirement(
            req, Path(self.cache_dir) if self.cache_dir else None
        )

    def _execute_job(self, job: Job) -> Any:
        scenario = get_scenario(job.name)
        ctx = ScenarioContext(
            params=dict(job.params),
            seed=job.seed,
            cache_dir=Path(self.cache_dir) if self.cache_dir else None,
        )
        with obs.span("serve.job", scenario=job.name), \
                deterministic_partition_time():
            return jsonify(scenario.run(ctx))

    def _on_terminal(self, job: Job) -> None:
        if job.status == "done" and not job.cached:
            self._inc("serve.executions")
            if self.use_cache:
                self.cache.put(job.key, {
                    "scenario": job.name,
                    "params": dict(job.params),
                    "seed": job.seed,
                    "result": job.result,
                })
        self._inc("serve.jobs_terminal", status=job.status)
        self._last_commit_t = self.clock()
        if job.wait_s is not None:
            self.metrics.histogram("serve.job_wait_seconds").observe(job.wait_s)
            obs.histogram("serve.job_wait_seconds").observe(job.wait_s)
        if job.status == "done" and job.finished_t is not None:
            latency = job.finished_t - job.submitted_t
            self.metrics.histogram(
                "serve.request_latency_seconds", self._latency_window,
                priority=job.priority,
            ).observe(latency)
            obs.histogram(
                "serve.request_latency_seconds", priority=job.priority
            ).observe(latency)
            if self._slo is not None:
                self._slo.record_latency(job.priority, latency)
        with self._idle:
            self._pop_inflight(job)
            if not self._inflight:
                self._idle.notify_all()

    def _pop_inflight(self, job: Job) -> None:
        """Drop ``job``'s inflight entry; runs under :attr:`_idle`.

        Identity-checked: a racing submit may have re-admitted this key
        after the job went terminal but before this pop ran — popping
        blindly would orphan the new job's dedup/drain entry (another
        race class the simulation harness's regression seeds pin down).
        """
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]

    # -- introspection -----------------------------------------------------------

    def _legacy_counters(self) -> dict[str, int]:
        """The historical ``stats()['counters']`` dict, reconstructed
        from the ``serve.*`` registry (keys appear once nonzero, so an
        untouched server still reports ``{}``)."""
        m = self.metrics
        out: dict[str, int] = {}

        def put(key: str, value: float) -> None:
            if value:
                out[key] = int(value)

        put("submitted", m.sum_counters("serve.submitted"))
        shed_total = 0
        for labels, value in m.counter_items("serve.shed"):
            put(f"shed:{labels.get('reason', '?')}", value)
            shed_total += int(value)
        put("shed", shed_total)
        put("dedup_hits", m.counter_value("serve.dedup_hits"))
        put("admitted", m.sum_counters("serve.admitted"))
        put("cache_hits", m.counter_value("serve.cache_hits"))
        put("cancelled", m.counter_value("serve.cancelled", where="pending"))
        put("cancel_requested", m.counter_value("serve.cancel_requested"))
        put("executions", m.counter_value("serve.executions"))
        put("completed", m.counter_value("serve.jobs_terminal", status="done"))
        put("failed", m.counter_value("serve.jobs_terminal", status="failed"))
        put("timeout", m.counter_value("serve.jobs_terminal", status="timeout"))
        return dict(sorted(out.items()))

    def stats(self) -> dict[str, Any]:
        """Snapshot of the server's counters and queue state.

        The ``counters`` dict keeps its historical shape (``submitted``,
        ``shed``/``shed:<reason>``, ``dedup_hits``, ...), now derived
        from the ``serve.*`` instruments on :attr:`metrics`.
        """
        with self._lock:
            inflight = len(self._inflight)
        return {
            "counters": self._legacy_counters(),
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "queue_by_priority": self.queue.depth_by_priority(),
            "inflight": inflight,
            "workers": self.scheduler.workers,
            "max_batch": self.scheduler.max_batch,
            "running": self.running,
            "uptime_wall_s": self.clock() - self._epoch,
        }

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since construction."""
        return self.clock() - self._epoch

    def health(self) -> HealthStatus:
        """Liveness + readiness with the individual gate signals.

        ``live`` is unconditionally True — a served response implies the
        process runs.  ``ready`` requires open admission, a started
        worker pool with every worker alive, and queue headroom.
        """
        depth = len(self.queue)
        capacity = self.queue.capacity
        alive = self.scheduler.alive_workers
        last_commit_age = (
            self.clock() - self._last_commit_t
            if self._last_commit_t is not None else None
        )
        checks: dict[str, Any] = {
            "admission_open": not self._closed,
            "scheduler_started": self.scheduler.started,
            "queue_depth": depth,
            "queue_capacity": capacity,
            "queue_has_headroom": depth < capacity,
            "workers": self.scheduler.workers,
            "workers_alive": alive,
            "last_commit_age_s": last_commit_age,
            "uptime_seconds": self.uptime_seconds,
        }
        ready = (
            not self._closed
            and self.scheduler.started
            and alive >= self.scheduler.workers
            and depth < capacity
        )
        return HealthStatus(live=True, ready=ready, checks=checks)

    def scrape_metrics(self) -> str:
        """The ``serve.*`` registry as Prometheus text exposition.

        Point-in-time gauges (queue depth, inflight, uptime) are
        refreshed into the registry before rendering, so a scrape always
        reflects current state, not the last event.
        """
        from repro.obs.live import render_prometheus

        m = self.metrics
        m.gauge("serve.uptime_seconds").set(self.uptime_seconds)
        m.gauge("serve.queue_depth").set(len(self.queue))
        m.gauge("serve.queue_capacity").set(self.queue.capacity)
        with self._lock:
            m.gauge("serve.inflight").set(len(self._inflight))
        m.gauge("serve.workers_alive").set(self.scheduler.alive_workers)
        for priority, depth in self.queue.depth_by_priority().items():
            m.gauge("serve.queue_lane_depth", priority=priority).set(depth)
        return render_prometheus(m)

    def live_snapshot(self, flight_tail: int = 20) -> dict[str, Any]:
        """One ``stats-stream`` tick: everything the dashboard renders.

        Bundles :meth:`stats`, :meth:`health`, per-lane latency
        summaries, the SLO document (when live obs is enabled) and the
        flight recorder's last ``flight_tail`` events.
        """
        latency: dict[str, Any] = {}
        for (name, labels), hist in sorted(
            self.metrics._histograms.items()
        ):
            if name != "serve.request_latency_seconds":
                continue
            lane = dict(labels).get("priority", "?")
            latency[lane] = hist.summary()
        doc: dict[str, Any] = {
            "op": "stats-tick",
            "uptime_seconds": self.uptime_seconds,
            "stats": self.stats(),
            "health": self.health().to_dict(),
            "latency": latency,
            "slo": self._slo.summary() if self._slo is not None else None,
            "flight_tail": self._flight.tail(flight_tail),
        }
        return doc

    def slo_alerts(self) -> list[Any]:
        """Currently firing SLO burn-rate alerts (empty when disabled)."""
        return self._slo.alerts() if self._slo is not None else []

    def dump_flight(self, path: str | Path | None = None) -> int:
        """Dump the flight recorder to ``path`` (default: the configured
        ``flight_dump_path``); returns the number of events written,
        0 when there is nowhere to write or nothing recorded."""
        target = path if path is not None else self.live_obs.flight_dump_path
        if target is None or not self._flight.enabled:
            return 0
        return self._flight.dump(target)


class ServerHandle:
    """The stable client facade over a :class:`ScenarioServer`.

    This is the surface :mod:`repro.api` exports: construct one (it owns
    a private server built from the given knobs, or wraps an existing
    ``server=``), ``submit`` requests, ``drain``, read ``stats``, and
    ``close`` — usable as a context manager::

        with ServerHandle(workers=4) as pragma:
            handle = pragma.submit("table2", priority="high")
            print(handle.result(timeout=60))
    """

    def __init__(self, server: ScenarioServer | None = None, **kwargs: Any) -> None:
        self._server = server if server is not None else ScenarioServer(**kwargs)

    @property
    def server(self) -> ScenarioServer:
        """The underlying server (advanced access)."""
        return self._server

    def submit(self, name: str, params: dict[str, Any] | None = None,
               **kwargs: Any) -> JobHandle:
        """Submit one scenario request (see :meth:`ScenarioServer.submit`)."""
        return self._server.submit(name, params, **kwargs)

    def submit_many(self, requests: Sequence[dict[str, Any]]) -> list[JobHandle]:
        """Submit a batch of request documents; handles in order."""
        return self._server.submit_many(requests)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the server is idle; True when it drained in time."""
        return self._server.drain(timeout)

    def stats(self) -> dict[str, Any]:
        """Server counter/queue snapshot."""
        return self._server.stats()

    def health(self) -> dict[str, Any]:
        """Liveness/readiness document (see :meth:`ScenarioServer.health`)."""
        return self._server.health().to_dict()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the server's ``serve.*`` metrics."""
        return self._server.scrape_metrics()

    def close(self) -> None:
        """Shut the server down (graceful: drains admitted work)."""
        self._server.shutdown()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
