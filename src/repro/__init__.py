"""repro — a reproduction of Pragma (Parashar & Hariri, IPDPS 2002).

Pragma is an adaptive runtime infrastructure for grid applications.  This
package reimplements the paper's four components — system characterization
(:mod:`repro.monitoring`), performance functions (:mod:`repro.perf`),
application characterization (:mod:`repro.policy.octant`), and the agent
based control network (:mod:`repro.agents`) — plus every substrate the
paper's evaluation depends on: a structured AMR simulator
(:mod:`repro.amr`), synthetic adaptive applications (:mod:`repro.apps`),
a grid/cluster simulator (:mod:`repro.gridsys`), the SAMR partitioner
suite (:mod:`repro.partitioners`), and a discrete-event execution
simulator (:mod:`repro.execsim`).  The pipeline itself is observable
through :mod:`repro.obs` (metrics, spans, run reports), off by default.

The evaluation surface — experiments, ablations, chaos configurations —
runs through the scenario sweep engine (:mod:`repro.sweep`): a uniform
:class:`Scenario` protocol, content-addressed result caching, and a
parallel :class:`SweepRunner` behind ``python -m repro sweep``.

Batch sweeps answer one question and exit; the serving runtime
(:mod:`repro.serve`, ``python -m repro serve``) keeps the same engine
resident — bounded priority admission, request coalescing, batched
dispatch and explicit load shedding behind :class:`ServerHandle`.

The stable public surface is the :mod:`repro.api` facade, snapshotted
in ``tests/golden/api_surface.json``; its names are re-exported here:

>>> from repro import Pragma, MetaPartitioner, run_sweep, ServerHandle
"""

from repro.api import (
    HealthStatus,
    LiveObsOptions,
    MetaPartitioner,
    Pragma,
    PragmaRuntime,
    RuntimeConfig,
    Scenario,
    ScenarioServer,
    ServerHandle,
    SimulatorOptions,
    SweepRunner,
    run_sweep,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "Pragma",
    "PragmaRuntime",
    "MetaPartitioner",
    "Scenario",
    "SweepRunner",
    "run_sweep",
    "ScenarioServer",
    "ServerHandle",
    "RuntimeConfig",
    "SimulatorOptions",
    "LiveObsOptions",
    "HealthStatus",
    "amr",
    "sfc",
    "apps",
    "gridsys",
    "monitoring",
    "perf",
    "partitioners",
    "policy",
    "agents",
    "execsim",
    "core",
    "obs",
    "sweep",
    "resilience",
    "experiments",
    "api",
    "config",
    "serve",
]
