"""Deterministic random-number-generator plumbing.

Every stochastic component in the package accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: a single integer seed at the top of a benchmark
fully determines the run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rng"]


def ensure_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh nondeterministic generator; an ``int`` seeds a
    new PCG64 generator; an existing generator is returned unchanged.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Child streams are statistically independent of each other and of the
    parent, so per-node or per-agent noise processes do not correlate.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
