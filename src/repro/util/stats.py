"""Small statistical helpers used across partitioning and evaluation code."""

from __future__ import annotations

import numpy as np

__all__ = [
    "load_imbalance",
    "max_load_imbalance_pct",
    "normalize",
    "weighted_sum",
    "relative_error",
    "percentage_improvement",
]


def load_imbalance(loads: np.ndarray) -> float:
    """Classic imbalance ratio ``max/mean`` of per-processor loads.

    Returns 1.0 for a perfectly balanced non-empty assignment.  An all-zero
    load vector is defined as balanced (ratio 1.0).
    """
    loads = np.asarray(loads, dtype=float)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    mean = loads.mean()
    if mean == 0.0:
        return 1.0
    return float(loads.max() / mean)


def max_load_imbalance_pct(loads: np.ndarray) -> float:
    """Maximum load imbalance as a percentage over the mean.

    This is the metric reported in Table 4 of the paper:
    ``100 * (max - mean) / mean``.
    """
    return 100.0 * (load_imbalance(loads) - 1.0)


def normalize(values: np.ndarray) -> np.ndarray:
    """Scale a non-negative vector so its maximum is 1.

    The paper's capacity calculator normalizes each NWS-reported attribute
    (available CPU, memory, bandwidth) before weighting.  An all-zero vector
    normalizes to all zeros rather than dividing by zero.
    """
    values = np.asarray(values, dtype=float)
    if values.size and (values < 0).any():
        raise ValueError("normalize expects non-negative values")
    top = values.max(initial=0.0)
    if top == 0.0:
        return np.zeros_like(values)
    return values / top


def weighted_sum(parts: dict[str, np.ndarray], weights: dict[str, float]) -> np.ndarray:
    """Weighted sum of named normalized attribute vectors.

    Implements the relative-capacity formula of Section 4.6:
    ``C_k = w_cpu * P_k + w_mem * M_k + w_bw * B_k`` with weights summing to 1.
    """
    if set(parts) != set(weights):
        raise ValueError(
            f"attribute names {sorted(parts)} do not match weight names {sorted(weights)}"
        )
    total_w = sum(weights.values())
    if not np.isclose(total_w, 1.0):
        raise ValueError(f"weights must sum to 1, got {total_w}")
    out = None
    for name, vec in parts.items():
        term = weights[name] * np.asarray(vec, dtype=float)
        out = term if out is None else out + term
    if out is None:
        raise ValueError("weighted_sum requires at least one attribute")
    return out


def relative_error(predicted: float, measured: float) -> float:
    """Percentage error ``100 * |predicted - measured| / |measured|`` (Table 1)."""
    if measured == 0:
        raise ValueError("measured value must be nonzero for relative error")
    return 100.0 * abs(predicted - measured) / abs(measured)


def percentage_improvement(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline`` (Tables 4, 5)."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return 100.0 * (baseline - improved) / baseline
