"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Sequence

__all__ = ["check_positive", "check_non_negative", "check_in_range", "check_shape3"]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_shape3(name: str, value: Sequence[int]) -> tuple[int, int, int]:
    """Validate a 3-component positive integer extent and return it as a tuple."""
    if len(value) != 3:
        raise ValueError(f"{name} must have 3 components, got {value!r}")
    out = tuple(int(v) for v in value)
    if any(v <= 0 for v in out):
        raise ValueError(f"{name} components must be positive, got {value!r}")
    return out  # type: ignore[return-value]
