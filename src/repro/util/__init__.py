"""Shared small utilities: seeded RNG handling, validation, statistics."""

from repro.util.rng import ensure_rng, spawn_rng
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_shape3,
)
from repro.util.stats import (
    load_imbalance,
    max_load_imbalance_pct,
    normalize,
    weighted_sum,
    relative_error,
    percentage_improvement,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_shape3",
    "load_imbalance",
    "max_load_imbalance_pct",
    "normalize",
    "weighted_sum",
    "relative_error",
    "percentage_improvement",
]
