"""Figure 1 — The CATALINA architecture, exercised end to end."""

from __future__ import annotations

from repro.agents import ManagementComputingSystem, ManagementEditor
from repro.agents.mcs import ExecutionEnvironment
from repro.apps.loadgen import LoadPattern
from repro.experiments.common import warn_deprecated
from repro.gridsys import FailureEvent, linux_cluster
from repro.monitoring import ResourceMonitor
from repro.sweep.scenario import ScenarioContext

__all__ = ["run", "render", "run_scenario", "render_scenario"]


def _run(seed: int = 21) -> ExecutionEnvironment:
    cluster = linux_cluster(
        8, load_pattern=LoadPattern.STEPPED, max_load=0.5, seed=seed
    )
    cluster.failures.add(FailureEvent(node_id=0, t_fail=10.0, t_recover=1e9))
    monitor = ResourceMonitor(cluster, seed=seed + 1)

    spec = (
        ManagementEditor("rm3d-managed")
        .add_component("solver-west", 4.0e7)
        .add_component("solver-east", 4.0e7)
        .require("performance", 1.0)
        .manage("performance", "migration")
        .build()
    )
    mcs = ManagementComputingSystem(cluster, monitor=monitor)
    env = mcs.build_environment(spec)
    # Pin one component to the doomed node so the fault path is exercised.
    env.components[0].node_id = 0
    env.run(2000.0)
    return env


def _digest(env: ExecutionEnvironment) -> dict:
    return {
        "spec": {
            "name": env.spec.name,
            "components": list(env.spec.components),
            "requirements": dict(env.spec.requirements),
        },
        "template": env.template.name,
        "decisions": [list(d) for d in env.adm.decisions],
        "agents": [
            {
                "name": agent.port.name,
                "node": comp.node_id,
                "migrations": comp.migrations,
                "events": agent.events_published,
                "actions": len(agent.actions_taken),
            }
            for comp, agent in zip(env.components, env.agents)
        ],
        "delivered": env.message_center.delivered_count,
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: AME spec → MCS build → ADM/CA management
    through a node failure; returns the JSON pipeline-trace digest."""
    return _digest(_run(seed=ctx.params.get("seed", 21)))


def render_scenario(result: dict) -> str:
    """Format the management-pipeline trace as text."""
    spec = result["spec"]
    lines = [
        "Figure 1 — CATALINA management pipeline trace",
        f"  AME spec: {spec['name']}, components={tuple(spec['components'])}, "
        f"requirements={spec['requirements']}",
        f"  MCS template discovered: {result['template']}",
        f"  ADM decisions: {[tuple(d) for d in result['decisions']]}",
    ]
    for agent in result["agents"]:
        lines.append(
            f"  CA {agent['name']}: node={agent['node']} "
            f"migrations={agent['migrations']} events={agent['events']} "
            f"actions={agent['actions']}"
        )
    lines.append(
        f"  Message Center delivered {result['delivered']} messages"
    )
    return "\n".join(lines)


def run(seed: int = 21) -> ExecutionEnvironment:
    """Deprecated shim — use the ``fig1`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("fig1.run()", "fig1.run_scenario(ctx)")
    return _run(seed)


def render(env: ExecutionEnvironment) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("fig1.render()", "fig1.render_scenario(result)")
    return render_scenario(_digest(env))
