"""Figure 1 — The CATALINA architecture, exercised end to end."""

from __future__ import annotations

from repro.agents import ManagementComputingSystem, ManagementEditor
from repro.agents.mcs import ExecutionEnvironment
from repro.apps.loadgen import LoadPattern
from repro.gridsys import FailureEvent, linux_cluster
from repro.monitoring import ResourceMonitor

__all__ = ["run", "render"]


def run(seed: int = 21) -> ExecutionEnvironment:
    """AME spec → MCS build → ADM/CA management through a node failure."""
    cluster = linux_cluster(
        8, load_pattern=LoadPattern.STEPPED, max_load=0.5, seed=seed
    )
    cluster.failures.add(FailureEvent(node_id=0, t_fail=10.0, t_recover=1e9))
    monitor = ResourceMonitor(cluster, seed=seed + 1)

    spec = (
        ManagementEditor("rm3d-managed")
        .add_component("solver-west", 4.0e7)
        .add_component("solver-east", 4.0e7)
        .require("performance", 1.0)
        .manage("performance", "migration")
        .build()
    )
    mcs = ManagementComputingSystem(cluster, monitor=monitor)
    env = mcs.build_environment(spec)
    # Pin one component to the doomed node so the fault path is exercised.
    env.components[0].node_id = 0
    env.run(2000.0)
    return env


def render(env: ExecutionEnvironment) -> str:
    """Format the management-pipeline trace as text."""
    lines = [
        "Figure 1 — CATALINA management pipeline trace",
        f"  AME spec: {env.spec.name}, components={env.spec.components}, "
        f"requirements={dict(env.spec.requirements)}",
        f"  MCS template discovered: {env.template.name}",
        f"  ADM decisions: {env.adm.decisions}",
    ]
    for comp, agent in zip(env.components, env.agents):
        lines.append(
            f"  CA {agent.port.name}: node={comp.node_id} "
            f"migrations={comp.migrations} events={agent.events_published} "
            f"actions={len(agent.actions_taken)}"
        )
    lines.append(
        f"  Message Center delivered {env.message_center.delivered_count} "
        f"messages"
    )
    return "\n".join(lines)
