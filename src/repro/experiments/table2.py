"""Table 2 — Octant → partitioning-scheme recommendations."""

from __future__ import annotations

from repro.experiments.common import warn_deprecated
from repro.policy import Octant, default_policy_base
from repro.sweep.scenario import ScenarioContext

__all__ = ["PAPER", "run", "render", "run_scenario", "render_scenario"]

PAPER = {
    "I": ("pBD-ISP", "G-MISP+SP"),
    "II": ("pBD-ISP",),
    "III": ("G-MISP+SP", "SP-ISP"),
    "IV": ("G-MISP+SP", "SP-ISP", "ISP"),
    "V": ("pBD-ISP",),
    "VI": ("pBD-ISP",),
    "VII": ("G-MISP+SP",),
    "VIII": ("G-MISP+SP", "ISP"),
}


def _run() -> dict[Octant, dict]:
    kb = default_policy_base()
    return {octant: kb.merged_action({"octant": octant}) for octant in Octant}


def _digest(actions: dict[Octant, dict]) -> dict:
    return {
        "octants": {
            octant.value: {
                "partitioners": list(action["partitioners"]),
                "partitioner": action["partitioner"],
            }
            for octant, action in actions.items()
        },
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: query the default policy base for every
    octant; returns the JSON recommendation digest."""
    return _digest(_run())


def render_scenario(result: dict) -> str:
    """Format the Table 2 comparison (ours vs paper) as text."""
    lines = [
        "Table 2 — Octant -> partitioning scheme recommendations",
        f"{'octant':>7}  {'schemes (ours)':<28} {'schemes (paper)':<28}",
    ]
    for octant in Octant:
        ours = ", ".join(result["octants"][octant.value]["partitioners"])
        paper = ", ".join(PAPER[octant.value])
        lines.append(f"{octant.value:>7}  {ours:<28} {paper:<28}")
    return "\n".join(lines)


def run() -> dict[Octant, dict]:
    """Deprecated shim — use the ``table2`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("table2.run()", "table2.run_scenario(ctx)")
    return _run()


def render(actions: dict[Octant, dict]) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("table2.render()", "table2.render_scenario(result)")
    return render_scenario(_digest(actions))
