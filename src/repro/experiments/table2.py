"""Table 2 — Octant → partitioning-scheme recommendations."""

from __future__ import annotations

from repro.policy import Octant, default_policy_base

__all__ = ["PAPER", "run", "render"]

PAPER = {
    "I": ("pBD-ISP", "G-MISP+SP"),
    "II": ("pBD-ISP",),
    "III": ("G-MISP+SP", "SP-ISP"),
    "IV": ("G-MISP+SP", "SP-ISP", "ISP"),
    "V": ("pBD-ISP",),
    "VI": ("pBD-ISP",),
    "VII": ("G-MISP+SP",),
    "VIII": ("G-MISP+SP", "ISP"),
}


def run() -> dict[Octant, dict]:
    """Query the default policy base for every octant."""
    kb = default_policy_base()
    return {octant: kb.merged_action({"octant": octant}) for octant in Octant}


def render(actions: dict[Octant, dict]) -> str:
    """Format the Table 2 comparison (ours vs paper) as text."""
    lines = [
        "Table 2 — Octant -> partitioning scheme recommendations",
        f"{'octant':>7}  {'schemes (ours)':<28} {'schemes (paper)':<28}",
    ]
    for octant in Octant:
        ours = ", ".join(actions[octant]["partitioners"])
        paper = ", ".join(PAPER[octant.value])
        lines.append(f"{octant.value:>7}  {ours:<28} {paper:<28}")
    return "\n".join(lines)
