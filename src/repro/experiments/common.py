"""Shared experiment infrastructure: the reference RM3D trace."""

from __future__ import annotations

from pathlib import Path

from repro.amr.regrid import RegridPolicy
from repro.amr.trace import AdaptationTrace
from repro.apps import RM3D, generate_trace

__all__ = ["NUM_COARSE_STEPS", "reference_policy", "rm3d_reference_trace"]

#: the paper's run length: 800 coarse steps (+2 regrids) -> 202 snapshots
NUM_COARSE_STEPS = 808


def reference_policy() -> RegridPolicy:
    """The paper's RM3D regrid configuration: factor-2 refinement on a
    128x32x32 base grid, regridding every 4 steps, 3 refined levels."""
    return RegridPolicy(ratio=2, thresholds=(0.2, 0.45, 0.7),
                        regrid_interval=4)


def rm3d_reference_trace(cache_dir: str | Path | None = None) -> AdaptationTrace:
    """The reference RM3D adaptation trace, cached under ``cache_dir``.

    Defaults to ``<repo>/.cache``; generation takes ~30 s on first use.
    """
    if cache_dir is None:
        cache_dir = Path(__file__).resolve().parents[3] / ".cache"
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(exist_ok=True)
    path = cache_dir / "rm3d_reference_trace.json.gz"
    if path.exists():
        return AdaptationTrace.load(path)
    trace = generate_trace(RM3D(), reference_policy(), NUM_COARSE_STEPS)
    trace.save(path)
    return trace
