"""Shared experiment infrastructure: reference traces + deprecation helper.

Two RM3D adaptation traces are shared across experiments and scenario
sweeps:

- the **reference** trace — the paper's full 128x32x32, 800-coarse-step
  run (~30 s to generate), consumed by the table3/4/5 and fig3/4 paper
  reproductions;
- the **small** trace — a reduced 64x16x16, 160-step run (~1 s),
  consumed by the default sweep scenario set and the test suite.

Both are cached on disk under ``.cache/`` and written via a temp file +
atomic rename, so concurrent sweep workers that race on a cold cache
each produce a complete file (last writer wins with identical content)
instead of interleaving a torn one.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Callable

from repro.amr.regrid import RegridPolicy
from repro.amr.trace import AdaptationTrace

__all__ = [
    "NUM_COARSE_STEPS",
    "SMALL_NUM_COARSE_STEPS",
    "reference_policy",
    "rm3d_reference_trace",
    "rm3d_small_trace",
    "warn_deprecated",
]

#: the paper's run length: 800 coarse steps (+2 regrids) -> 202 snapshots
NUM_COARSE_STEPS = 808

#: the reduced sweep/CI run length (-> 40 snapshots)
SMALL_NUM_COARSE_STEPS = 160


def warn_deprecated(old: str, new: str) -> None:
    """Emit the standard :class:`DeprecationWarning` for a legacy shim."""
    warnings.warn(
        f"{old} is deprecated; use {new} (the Scenario API) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reference_policy() -> RegridPolicy:
    """The paper's RM3D regrid configuration: factor-2 refinement on a
    128x32x32 base grid, regridding every 4 steps, 3 refined levels."""
    return RegridPolicy(ratio=2, thresholds=(0.2, 0.45, 0.7),
                        regrid_interval=4)


def _default_cache_dir() -> Path:
    return Path(__file__).resolve().parents[3] / ".cache"


def _cached_trace(
    cache_dir: str | Path | None,
    filename: str,
    generate: Callable[[], AdaptationTrace],
) -> AdaptationTrace:
    """Load ``filename`` from the cache dir, generating it atomically.

    The trace is written to a process-unique temp file and renamed into
    place, so concurrent generators cannot expose a partial file to each
    other — the fix for the cold-cache race between parallel sweep
    workers.
    """
    cache_dir = (
        _default_cache_dir() if cache_dir is None else Path(cache_dir)
    )
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / filename
    if path.exists():
        return AdaptationTrace.load(path)
    trace = generate()
    tmp = cache_dir / f".{filename}.{os.getpid()}.tmp"
    try:
        trace.save(tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on write failure
            tmp.unlink()
    return trace


def rm3d_reference_trace(
    cache_dir: str | Path | None = None,
) -> AdaptationTrace:
    """The reference RM3D adaptation trace, cached under ``cache_dir``.

    Defaults to ``<repo>/.cache``; generation takes ~30 s on first use.
    """
    from repro.apps import RM3D, generate_trace

    return _cached_trace(
        cache_dir,
        "rm3d_reference_trace.json.gz",
        lambda: generate_trace(RM3D(), reference_policy(), NUM_COARSE_STEPS),
    )


def rm3d_small_trace(cache_dir: str | Path | None = None) -> AdaptationTrace:
    """The reduced RM3D trace (64x16x16, 160 steps), cached on disk.

    Seconds to generate; the default input of the trace-consuming sweep
    scenarios so the full registered set stays CI-sized.
    """
    from repro.apps import generate_trace
    from repro.apps.rm3d import RM3D, RM3DConfig

    def generate() -> AdaptationTrace:
        cfg = RM3DConfig(
            shape=(64, 16, 16), interface_x=20.0, shock_entry_snapshot=6.0,
            shock_speed=3.0, reshock_snapshot=30.0, num_seed_clumps=5,
            num_mixing_structures=10,
        )
        policy = RegridPolicy(thresholds=(0.2, 0.45, 0.7), regrid_interval=4)
        return generate_trace(RM3D(cfg), policy, SMALL_NUM_COARSE_STEPS)

    return _cached_trace(cache_dir, "rm3d_small_trace.json.gz", generate)
