"""Table 1 — Accuracy of the Performance Functions."""

from __future__ import annotations

from repro.perf import PFModelingExperiment
from repro.perf.endtoend import PFAccuracyRow, TABLE1_SIZES

__all__ = ["PAPER", "run", "render"]

#: data size (bytes) -> (predicted delay, measured delay, % error)
PAPER = {
    200: (8.2759e-04, 8.3187e-04, 0.515),
    400: (0.0011815, 0.0011288, 4.67),
    600: (0.0014516, 0.0015312, 5.2),
    800: (0.0017969, 0.0018809, 4.46),
    1000: (0.0021705, 0.00223055, 2.7),
}


def run(seed: int = 3) -> list[PFAccuracyRow]:
    """Fit per-component PFs, compose end to end, validate on Table 1 sizes."""
    return PFModelingExperiment(seed=seed).evaluate(TABLE1_SIZES)


def render(rows: list[PFAccuracyRow]) -> str:
    """Format the Table 1 comparison (ours vs paper) as text."""
    lines = [
        "Table 1 — Accuracy of the Performance Functions",
        f"{'size(B)':>8} {'predicted':>12} {'measured':>12} "
        f"{'%error':>8} {'paper %error':>13}",
    ]
    for r in rows:
        lines.append(
            f"{r.data_size:>8} {r.predicted:>12.6g} {r.measured:>12.6g} "
            f"{r.error_pct:>8.3f} {PAPER[r.data_size][2]:>13.3f}"
        )
    return "\n".join(lines)
