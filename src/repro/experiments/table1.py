"""Table 1 — Accuracy of the Performance Functions."""

from __future__ import annotations

from repro.experiments.common import warn_deprecated
from repro.perf import PFModelingExperiment
from repro.perf.endtoend import PFAccuracyRow, TABLE1_SIZES
from repro.sweep.scenario import ScenarioContext

__all__ = ["PAPER", "run", "render", "run_scenario", "render_scenario"]

#: data size (bytes) -> (predicted delay, measured delay, % error)
PAPER = {
    200: (8.2759e-04, 8.3187e-04, 0.515),
    400: (0.0011815, 0.0011288, 4.67),
    600: (0.0014516, 0.0015312, 5.2),
    800: (0.0017969, 0.0018809, 4.46),
    1000: (0.0021705, 0.00223055, 2.7),
}


def _run(seed: int = 3) -> list[PFAccuracyRow]:
    return PFModelingExperiment(seed=seed).evaluate(TABLE1_SIZES)


def _digest(rows: list[PFAccuracyRow]) -> dict:
    return {
        "rows": [
            {
                "size": r.data_size,
                "predicted": r.predicted,
                "measured": r.measured,
                "error_pct": r.error_pct,
            }
            for r in rows
        ],
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: fit per-component PFs, compose end to end,
    validate on the Table 1 sizes; returns the JSON row digest."""
    return _digest(_run(seed=ctx.params.get("seed", 3)))


def render_scenario(result: dict) -> str:
    """Format the Table 1 comparison (ours vs paper) as text."""
    lines = [
        "Table 1 — Accuracy of the Performance Functions",
        f"{'size(B)':>8} {'predicted':>12} {'measured':>12} "
        f"{'%error':>8} {'paper %error':>13}",
    ]
    for r in result["rows"]:
        paper = PAPER.get(r["size"])
        paper_err = f"{paper[2]:>13.3f}" if paper else f"{'-':>13}"
        lines.append(
            f"{r['size']:>8} {r['predicted']:>12.6g} {r['measured']:>12.6g} "
            f"{r['error_pct']:>8.3f} {paper_err}"
        )
    return "\n".join(lines)


def run(seed: int = 3) -> list[PFAccuracyRow]:
    """Deprecated shim — use the ``table1`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("table1.run()", "table1.run_scenario(ctx)")
    return _run(seed)


def render(rows: list[PFAccuracyRow]) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("table1.render()", "table1.render_scenario(result)")
    return render_scenario(_digest(rows))
