"""First-class reproduction experiments — one module per table/figure.

Every experiment module exposes:

- ``run(...)`` — execute the experiment and return structured results,
- ``render(result)`` — format the paper-style table/figure as text,
- ``PAPER`` constants with the published values for comparison.

The pytest benchmarks under ``benchmarks/`` and the command line
(``python -m repro <experiment>``) are both thin wrappers around these.
"""

from repro.experiments import common
from repro.experiments import table1, table2, table3, table4, table5
from repro.experiments import fig1, fig2, fig3, fig4

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
}

__all__ = ["EXPERIMENTS", "common"] + list(EXPERIMENTS)
