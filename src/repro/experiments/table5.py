"""Table 5 — Improvement due to system-sensitive adaptive partitioning."""

from __future__ import annotations

from repro.amr.trace import AdaptationTrace
from repro.apps.loadgen import LoadPattern
from repro.core import CapacityCalculator, CapacityWeights, SystemSensitivePipeline
from repro.execsim import CostModel
from repro.experiments.common import warn_deprecated
from repro.gridsys import linux_cluster
from repro.monitoring import ResourceMonitor
from repro.sweep.scenario import ScenarioContext

__all__ = ["PROC_COUNTS", "PAPER_32_NODE_IMPROVEMENT", "run", "render",
           "run_scenario", "render_scenario"]

PROC_COUNTS = (4, 8, 16, 32)

#: "System sensitive partitioning reduced execution time by about 18% in
#: the case of 32 nodes."
PAPER_32_NODE_IMPROVEMENT = 18.0


def build_pipeline(seed: int = 42) -> SystemSensitivePipeline:
    """The Section 4.6 testbed: 32 loaded nodes on fast Ethernet."""
    cluster = linux_cluster(
        32, load_pattern=LoadPattern.STEPPED, max_load=0.58, seed=seed
    )
    monitor = ResourceMonitor(cluster, seed=1)
    calculator = CapacityCalculator(
        monitor, CapacityWeights(cpu=0.8, memory=0.05, bandwidth=0.15)
    )
    # The RM3D cluster kernel uses latency-tolerant communication
    # (a Section 3.5 policy), overlapping most ghost exchange.
    return SystemSensitivePipeline(
        cluster=cluster,
        calculator=calculator,
        cost_model=CostModel(comm_overlap=0.75),
    )


def _run(trace: AdaptationTrace, seed: int = 42) -> dict[int, float]:
    pipeline = build_pipeline(seed)
    pipeline.warm_up()
    return {
        n: pipeline.improvement_pct(trace, num_procs=n) for n in PROC_COUNTS
    }


def _digest(improvements: dict[int, float]) -> dict:
    return {
        "improvements": {str(n): improvements[n] for n in sorted(improvements)},
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: improvement of system-sensitive over equal
    partitioning at each processor count; returns the JSON digest."""
    return _digest(_run(ctx.trace(), seed=ctx.params.get("seed", 42)))


def render_scenario(result: dict) -> str:
    """Format the per-processor-count improvement table as text."""
    lines = [
        "Table 5 — improvement of system-sensitive over equal partitioning",
        f"{'processors':>11} {'improvement(%)':>15}",
    ]
    for n in sorted(result["improvements"], key=int):
        lines.append(f"{int(n):>11} {result['improvements'][n]:>15.1f}")
    lines.append(
        f"(paper: about {PAPER_32_NODE_IMPROVEMENT:.0f}% at 32 nodes, "
        "growing with processor count)"
    )
    return "\n".join(lines)


def run(trace: AdaptationTrace, seed: int = 42) -> dict[int, float]:
    """Deprecated shim — use the ``table5`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("table5.run()", "table5.run_scenario(ctx)")
    return _run(trace, seed)


def render(improvements: dict[int, float]) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("table5.render()", "table5.render_scenario(result)")
    return render_scenario(_digest(improvements))
