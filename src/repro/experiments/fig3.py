"""Figure 3 — RM3D profile views at sampled time-steps."""

from __future__ import annotations

import numpy as np

from repro.amr.trace import AdaptationTrace
from repro.experiments.common import warn_deprecated
from repro.sweep.scenario import ScenarioContext

__all__ = ["SAMPLED", "ascii_profile", "run", "render", "run_scenario",
           "render_scenario"]

SAMPLED = (0, 5, 25, 106, 137, 162, 174, 201)


def _run(trace: AdaptationTrace) -> dict[int, dict]:
    out = {}
    for idx in SAMPLED:
        if idx >= len(trace):
            continue
        snap = trace[idx]
        mask = snap.hierarchy.refined_mask()
        out[idx] = {
            "x_profile": mask.mean(axis=(1, 2)),
            "refined_fraction": float(mask.mean()),
            "patches": snap.num_patches,
            "levels": snap.hierarchy.num_levels,
            "cells": snap.total_cells,
        }
    return out


def _digest(data: dict[int, dict]) -> dict:
    return {
        "snapshots": [
            {
                "index": idx,
                "x_profile": [float(v) for v in d["x_profile"]],
                "refined_fraction": d["refined_fraction"],
                "patches": d["patches"],
                "levels": d["levels"],
                "cells": d["cells"],
            }
            for idx, d in sorted(data.items())
        ],
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: refinement profiles + structure stats at the
    sampled snapshots present in the configured trace; returns the JSON
    profile digest."""
    return _digest(_run(ctx.trace()))


def ascii_profile(profile: np.ndarray, bins: int = 64) -> str:
    """Render an x-profile as a density strip."""
    ramp = " .:-=+*#%@"
    resampled = profile[(np.arange(bins) * len(profile) / bins).astype(int)]
    idx = np.minimum(
        (resampled * (len(ramp) - 1) / max(resampled.max(), 1e-9)).astype(int),
        len(ramp) - 1,
    )
    return "".join(ramp[i] for i in idx)


def render_scenario(result: dict) -> str:
    """Format the sampled refinement profiles as ASCII strips."""
    lines = [
        "Figure 3 — RM3D refinement profiles at sampled snapshots",
        "(density of refined cells along the shock axis x)",
    ]
    for d in result["snapshots"]:
        lines.append(
            f"  t={d['index']:>3}  "
            f"|{ascii_profile(np.asarray(d['x_profile']))}|  "
            f"rf={d['refined_fraction']:.3f} patches={d['patches']}"
        )
    return "\n".join(lines)


def run(trace: AdaptationTrace) -> dict[int, dict]:
    """Deprecated shim — use the ``fig3`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("fig3.run()", "fig3.run_scenario(ctx)")
    return _run(trace)


def render(data: dict[int, dict]) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("fig3.render()", "fig3.render_scenario(result)")
    return render_scenario(_digest(data))
