"""Figure 3 — RM3D profile views at sampled time-steps."""

from __future__ import annotations

import numpy as np

from repro.amr.trace import AdaptationTrace

__all__ = ["SAMPLED", "run", "render"]

SAMPLED = (0, 5, 25, 106, 137, 162, 174, 201)


def run(trace: AdaptationTrace) -> dict[int, dict]:
    """Refinement profiles + structure stats at the sampled snapshots."""
    out = {}
    for idx in SAMPLED:
        snap = trace[idx]
        mask = snap.hierarchy.refined_mask()
        out[idx] = {
            "x_profile": mask.mean(axis=(1, 2)),
            "refined_fraction": float(mask.mean()),
            "patches": snap.num_patches,
            "levels": snap.hierarchy.num_levels,
            "cells": snap.total_cells,
        }
    return out


def ascii_profile(profile: np.ndarray, bins: int = 64) -> str:
    """Render an x-profile as a density strip."""
    ramp = " .:-=+*#%@"
    resampled = profile[(np.arange(bins) * len(profile) / bins).astype(int)]
    idx = np.minimum(
        (resampled * (len(ramp) - 1) / max(resampled.max(), 1e-9)).astype(int),
        len(ramp) - 1,
    )
    return "".join(ramp[i] for i in idx)


def render(data: dict[int, dict]) -> str:
    """Format the sampled refinement profiles as ASCII strips."""
    lines = [
        "Figure 3 — RM3D refinement profiles at sampled snapshots",
        "(density of refined cells along the shock axis x)",
    ]
    for idx in SAMPLED:
        d = data[idx]
        lines.append(
            f"  t={idx:>3}  |{ascii_profile(d['x_profile'])}|  "
            f"rf={d['refined_fraction']:.3f} patches={d['patches']}"
        )
    return "\n".join(lines)
