"""Figure 2 — The octant state cube, regenerated from synthetic states."""

from __future__ import annotations

from repro.amr.box import Box
from repro.amr.grid import Level, Patch
from repro.amr.hierarchy import GridHierarchy
from repro.experiments.common import warn_deprecated
from repro.policy import (
    Octant,
    OctantAxes,
    OctantThresholds,
    classify_hierarchy,
)
from repro.policy.octant import AppSignals
from repro.sweep.scenario import ScenarioContext

__all__ = ["CORNER_THRESHOLDS", "run", "render", "run_scenario",
           "render_scenario"]

DOMAIN = Box.from_shape((64, 32, 32))

#: The comm/comp signal (ghost surface per unit of compute) is scale
#: dependent: these synthetic corner states are shallow two-level
#: hierarchies, so the boundary between sheet-like (comm) and cube-like
#: (comp) refinement sits at a higher ratio than on the deep RM3D
#: hierarchies the defaults are calibrated for.  Thresholds are
#: calibration policy, exactly as in the paper's knowledge base.
CORNER_THRESHOLDS = OctantThresholds(min_comm_ratio=1.0)


def _hierarchy(boxes) -> GridHierarchy:
    base = Level(index=0, ratio=1)
    base.add(Patch(box=DOMAIN, level=0, patch_id=0))
    fine = Level(index=1, ratio=2)
    for i, (lo, hi) in enumerate(boxes):
        fine.add(Patch(box=Box(lo, hi).refine(2), level=1, patch_id=i + 1))
    return GridHierarchy(domain=DOMAIN, levels=[base, fine])


def corner_state(
    scattered: bool, moving: bool, thin: bool, shifted: bool
) -> GridHierarchy:
    """Synthesize a hierarchy for one cube corner.

    ``thin`` produces sheet-like refinement (communication dominated);
    ``shifted`` displaces the features (synthesizes the previous snapshot
    for the dynamics axis).
    """
    dx = 16 if (moving and shifted) else 0
    if scattered:
        centers = [(8, 6, 6), (40, 24, 24), (8, 24, 6), (40, 6, 24),
                   (24, 16, 16)]
    else:
        centers = [(28, 14, 14)]
    boxes = []
    for cx, cy, cz in centers:
        cx = (cx + dx) % 48 + 4
        if thin:
            boxes.append(((cx, cy - 5, cz - 5), (cx + 1, cy + 5, cz + 5)))
        else:
            boxes.append(((cx - 4, cy - 4, cz - 4), (cx + 4, cy + 4, cz + 4)))
    return _hierarchy(boxes)


def _run() -> dict[tuple[bool, bool, bool], tuple[Octant, AppSignals]]:
    out = {}
    for scattered in (False, True):
        for moving in (False, True):
            for thin in (False, True):
                current = corner_state(scattered, moving, thin, shifted=False)
                previous = corner_state(scattered, moving, thin, shifted=True)
                octant, signals = classify_hierarchy(
                    current, previous, CORNER_THRESHOLDS
                )
                out[(scattered, moving, thin)] = (octant, signals)
    return out


def _digest(results) -> dict:
    corners = []
    for (scattered, moving, thin), (octant, _sig) in sorted(results.items()):
        expected = OctantAxes(
            scattered=scattered, high_dynamics=moving, comm_dominated=thin
        ).octant()
        corners.append({
            "scattered": scattered,
            "moving": moving,
            "thin": thin,
            "octant": octant.value,
            "expected": expected.value,
            "ok": octant is expected,
        })
    return {"corners": corners}


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: classify all 8 synthetic corner states;
    returns the JSON state-cube digest."""
    return _digest(_run())


def render_scenario(result: dict) -> str:
    """Format the classified state cube as text."""
    lines = [
        "Figure 2 — the octant state cube",
        f"{'pattern':>10} {'dynamics':>9} {'dominance':>10} "
        f"{'-> octant':>10} {'expected':>9}",
    ]
    for c in result["corners"]:
        lines.append(
            f"{'scattered' if c['scattered'] else 'localized':>10} "
            f"{'high' if c['moving'] else 'low':>9} "
            f"{'comm' if c['thin'] else 'comp':>10} "
            f"{c['octant']:>10} {c['expected']:>9} "
            f"{'ok' if c['ok'] else 'MISS'}"
        )
    return "\n".join(lines)


def run() -> dict[tuple[bool, bool, bool], tuple[Octant, AppSignals]]:
    """Deprecated shim — use the ``fig2`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("fig2.run()", "fig2.run_scenario(ctx)")
    return _run()


def render(results) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("fig2.render()", "fig2.render_scenario(result)")
    return render_scenario(_digest(results))
