"""Figure 4 — System-sensitive adaptive AMR partitioning data flow."""

from __future__ import annotations

from repro.amr.trace import AdaptationTrace
from repro.apps.loadgen import LoadPattern
from repro.core import CapacityCalculator, CapacityWeights
from repro.experiments.common import warn_deprecated
from repro.gridsys import linux_cluster
from repro.monitoring import ResourceMonitor
from repro.partitioners import HeterogeneousPartitioner, build_units
from repro.sweep.scenario import ScenarioContext

__all__ = ["run", "render", "run_scenario", "render_scenario"]


def _run(trace: AdaptationTrace, seed: int = 33):
    cluster = linux_cluster(
        8, load_pattern=LoadPattern.STEPPED, max_load=0.7, seed=seed
    )
    monitor = ResourceMonitor(cluster, seed=seed + 1)
    monitor.sample_range(0.0, 32.0, 1.0)

    weights = CapacityWeights(cpu=0.8, memory=0.05, bandwidth=0.15)
    capacities = CapacityCalculator(monitor, weights).relative_capacities()

    units = build_units(trace[len(trace) // 2].hierarchy, granularity=2)
    partition = HeterogeneousPartitioner().partition(units, 8, capacities)
    return monitor, capacities, partition


def _digest(result) -> dict:
    monitor, capacities, partition = result
    loads = partition.proc_loads()
    shares = loads / loads.sum()
    nodes = []
    for n in range(len(capacities)):
        state = monitor.current(n)
        nodes.append({
            "node": n,
            "cpu_avail": float(state.cpu),
            "bandwidth": float(state.bandwidth),
            "capacity": float(capacities[n]),
            "load_share": float(shares[n]),
        })
    return {"nodes": nodes}


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: monitoring → capacity calculator →
    heterogeneous partitioner on the configured trace; returns the JSON
    per-node digest."""
    return _digest(_run(ctx.trace(), seed=ctx.params.get("seed", 33)))


def render_scenario(result: dict) -> str:
    """Format the per-node monitoring/capacity/load-share table."""
    lines = [
        "Figure 4 — monitoring -> capacity calculator -> partitioner",
        f"{'node':>5} {'cpu avail':>10} {'bandwidth':>12} "
        f"{'capacity':>9} {'load share':>11}",
    ]
    for d in result["nodes"]:
        lines.append(
            f"{d['node']:>5} {d['cpu_avail']:>10.3f} "
            f"{d['bandwidth']:>12.3e} {d['capacity']:>9.3f} "
            f"{d['load_share']:>11.3f}"
        )
    return "\n".join(lines)


def run(trace: AdaptationTrace, seed: int = 33):
    """Deprecated shim — use the ``fig4`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("fig4.run()", "fig4.run_scenario(ctx)")
    return _run(trace, seed)


def render(result) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("fig4.render()", "fig4.render_scenario(result)")
    return render_scenario(_digest(result))
