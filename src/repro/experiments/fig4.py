"""Figure 4 — System-sensitive adaptive AMR partitioning data flow."""

from __future__ import annotations

from repro.amr.trace import AdaptationTrace
from repro.apps.loadgen import LoadPattern
from repro.core import CapacityCalculator, CapacityWeights
from repro.gridsys import linux_cluster
from repro.monitoring import ResourceMonitor
from repro.partitioners import HeterogeneousPartitioner, build_units

__all__ = ["run", "render"]


def run(trace: AdaptationTrace, seed: int = 33):
    """Monitoring → capacity calculator → heterogeneous partitioner."""
    cluster = linux_cluster(
        8, load_pattern=LoadPattern.STEPPED, max_load=0.7, seed=seed
    )
    monitor = ResourceMonitor(cluster, seed=seed + 1)
    monitor.sample_range(0.0, 32.0, 1.0)

    weights = CapacityWeights(cpu=0.8, memory=0.05, bandwidth=0.15)
    capacities = CapacityCalculator(monitor, weights).relative_capacities()

    units = build_units(trace[len(trace) // 2].hierarchy, granularity=2)
    partition = HeterogeneousPartitioner().partition(units, 8, capacities)
    return monitor, capacities, partition


def render(result) -> str:
    """Format the per-node monitoring/capacity/load-share table."""
    monitor, capacities, partition = result
    loads = partition.proc_loads()
    shares = loads / loads.sum()
    lines = [
        "Figure 4 — monitoring -> capacity calculator -> partitioner",
        f"{'node':>5} {'cpu avail':>10} {'bandwidth':>12} "
        f"{'capacity':>9} {'load share':>11}",
    ]
    for n in range(len(capacities)):
        state = monitor.current(n)
        lines.append(
            f"{n:>5} {state.cpu:>10.3f} {state.bandwidth:>12.3e} "
            f"{capacities[n]:>9.3f} {shares[n]:>11.3f}"
        )
    return "\n".join(lines)
