"""Table 3 — Characterizing RM3D application run-time state."""

from __future__ import annotations

from dataclasses import dataclass

from repro.amr.trace import AdaptationTrace
from repro.core import MetaPartitioner
from repro.experiments.common import warn_deprecated
from repro.policy import Octant, classify_trace
from repro.sweep.scenario import ScenarioContext

__all__ = ["PAPER", "Table3Row", "run", "render", "run_scenario",
           "render_scenario"]

#: snapshot index -> (octant, selected partitioner)
PAPER = {
    0: ("IV", "G-MISP+SP"),
    5: ("VII", "G-MISP+SP"),
    25: ("I", "pBD-ISP"),
    106: ("VI", "pBD-ISP"),
    137: ("VIII", "G-MISP+SP"),
    162: ("II", "pBD-ISP"),
    174: ("V", "pBD-ISP"),
    201: ("III", "G-MISP+SP"),
}


@dataclass(frozen=True, slots=True)
class Table3Row:
    """Classification + selection for one snapshot."""

    index: int
    octant: Octant
    partitioner: str


def _run(trace: AdaptationTrace) -> list[Table3Row]:
    states = classify_trace(trace)
    meta = MetaPartitioner()
    return [
        Table3Row(
            index=idx,
            octant=state.octant,
            partitioner=meta.decide_for_octant(state.octant).label,
        )
        for idx, state in enumerate(states)
    ]


def _digest(rows: list[Table3Row]) -> dict:
    sampled = {}
    matches = 0
    for idx, (p_oct, p_part) in sorted(PAPER.items()):
        if idx >= len(rows):
            continue
        row = rows[idx]
        ok = row.octant.value == p_oct and row.partitioner == p_part
        matches += ok
        sampled[str(idx)] = {
            "octant": row.octant.value,
            "partitioner": row.partitioner,
            "paper_octant": p_oct,
            "paper_partitioner": p_part,
            "ok": bool(ok),
        }
    return {
        "num_snapshots": len(rows),
        "rows": [[r.octant.value, r.partitioner] for r in rows],
        "sampled": sampled,
        "agreement": matches,
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: classify every snapshot of the configured
    trace and select partitioners through Table 2; returns the JSON
    classification digest (paper-sampled indices included when the
    trace is long enough to contain them)."""
    return _digest(_run(ctx.trace()))


def render_scenario(result: dict) -> str:
    """Format the sampled-snapshot comparison against the paper."""
    lines = [
        "Table 3 — RM3D run-time state characterization",
        f"{'snapshot':>9} {'octant':>7} {'partitioner':>12} "
        f"{'paper octant':>13} {'paper partitioner':>18}",
    ]
    sampled = result["sampled"]
    for idx in sorted(sampled, key=int):
        s = sampled[idx]
        lines.append(
            f"{idx:>9} {s['octant']:>7} {s['partitioner']:>12} "
            f"{s['paper_octant']:>13} {s['paper_partitioner']:>18}  "
            f"{'ok' if s['ok'] else 'MISS'}"
        )
    lines.append(
        f"agreement: {result['agreement']}/{len(sampled)} sampled snapshots"
    )
    return "\n".join(lines)


def run(trace: AdaptationTrace) -> list[Table3Row]:
    """Deprecated shim — use the ``table3`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("table3.run()", "table3.run_scenario(ctx)")
    return _run(trace)


def render(rows: list[Table3Row]) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("table3.render()", "table3.render_scenario(result)")
    return render_scenario(_digest(rows))
