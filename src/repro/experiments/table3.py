"""Table 3 — Characterizing RM3D application run-time state."""

from __future__ import annotations

from dataclasses import dataclass

from repro.amr.trace import AdaptationTrace
from repro.core import MetaPartitioner
from repro.policy import Octant, classify_trace

__all__ = ["PAPER", "Table3Row", "run", "render"]

#: snapshot index -> (octant, selected partitioner)
PAPER = {
    0: ("IV", "G-MISP+SP"),
    5: ("VII", "G-MISP+SP"),
    25: ("I", "pBD-ISP"),
    106: ("VI", "pBD-ISP"),
    137: ("VIII", "G-MISP+SP"),
    162: ("II", "pBD-ISP"),
    174: ("V", "pBD-ISP"),
    201: ("III", "G-MISP+SP"),
}


@dataclass(frozen=True, slots=True)
class Table3Row:
    """Classification + selection for one snapshot."""

    index: int
    octant: Octant
    partitioner: str


def run(trace: AdaptationTrace) -> list[Table3Row]:
    """Classify every snapshot; select partitioners through Table 2."""
    states = classify_trace(trace)
    meta = MetaPartitioner()
    return [
        Table3Row(
            index=idx,
            octant=state.octant,
            partitioner=meta.decide_for_octant(state.octant).label,
        )
        for idx, state in enumerate(states)
    ]


def render(rows: list[Table3Row]) -> str:
    """Format the sampled-snapshot comparison against the paper."""
    lines = [
        "Table 3 — RM3D run-time state characterization",
        f"{'snapshot':>9} {'octant':>7} {'partitioner':>12} "
        f"{'paper octant':>13} {'paper partitioner':>18}",
    ]
    matches = 0
    for idx, (p_oct, p_part) in sorted(PAPER.items()):
        row = rows[idx]
        ok = row.octant.value == p_oct and row.partitioner == p_part
        matches += ok
        lines.append(
            f"{idx:>9} {row.octant.value:>7} {row.partitioner:>12} "
            f"{p_oct:>13} {p_part:>18}  {'ok' if ok else 'MISS'}"
        )
    lines.append(f"agreement: {matches}/{len(PAPER)} sampled snapshots")
    return "\n".join(lines)
