"""Table 4 — Partitioner performance for RM3D on 64 processors."""

from __future__ import annotations

from repro.amr.trace import AdaptationTrace
from repro.core import PragmaRuntime
from repro.core.pragma import AdaptiveRunReport
from repro.gridsys import sp2_blue_horizon

__all__ = ["PAPER", "PAPER_IMPROVEMENT_PCT", "run", "render"]

#: partitioner -> (runtime s, max load imbalance %, AMR efficiency %)
PAPER = {
    "SFC": (484.502, 24.878, 98.8207),
    "G-MISP+SP": (405.062, 11.3178, 98.7778),
    "pBD-ISP": (414.952, 35.0317, 98.8582),
    "adaptive": (352.824, 8.11825, 98.7633),
}

PAPER_IMPROVEMENT_PCT = 27.2


def run(trace: AdaptationTrace, num_procs: int = 64) -> AdaptiveRunReport:
    """Replay the trace under the meta-partitioner and the static baselines."""
    runtime = PragmaRuntime(
        cluster=sp2_blue_horizon(num_procs), num_procs=num_procs
    )
    return runtime.run_adaptive(
        trace, compare_with=("SFC", "G-MISP+SP", "pBD-ISP")
    )


def render(report: AdaptiveRunReport) -> str:
    """Format the Table 4 comparison (ours vs paper) as text."""
    results = {"adaptive": report.adaptive, **report.static}
    lines = [
        "Table 4 — Partitioner performance, RM3D on 64 processors",
        f"{'partitioner':>12} {'runtime(s)':>11} {'imbalance(%)':>13} "
        f"{'efficiency(%)':>14}   paper: rt / imb / eff",
    ]
    for name in ("SFC", "G-MISP+SP", "pBD-ISP", "adaptive"):
        r = results[name]
        p = PAPER[name]
        lines.append(
            f"{name:>12} {r.total_runtime:>11.1f} "
            f"{r.mean_imbalance_pct:>13.1f} {r.amr_efficiency_pct:>14.2f}"
            f"   {p[0]:.1f} / {p[1]:.1f} / {p[2]:.2f}"
        )
    lines.append(
        f"adaptive improvement over slowest: "
        f"{report.improvement_over_worst_pct:.1f}% "
        f"(paper: {PAPER_IMPROVEMENT_PCT}%)"
    )
    lines.append(
        f"adaptive partitioner usage: {report.adaptive.partitioner_usage()}"
    )
    return "\n".join(lines)
