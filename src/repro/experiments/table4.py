"""Table 4 — Partitioner performance for RM3D on 64 processors."""

from __future__ import annotations

from repro.amr.trace import AdaptationTrace
from repro.core import PragmaRuntime
from repro.core.pragma import AdaptiveRunReport
from repro.experiments.common import warn_deprecated
from repro.gridsys import sp2_blue_horizon
from repro.sweep.scenario import ScenarioContext

__all__ = ["PAPER", "PAPER_IMPROVEMENT_PCT", "run", "render",
           "run_scenario", "render_scenario"]

#: partitioner -> (runtime s, max load imbalance %, AMR efficiency %)
PAPER = {
    "SFC": (484.502, 24.878, 98.8207),
    "G-MISP+SP": (405.062, 11.3178, 98.7778),
    "pBD-ISP": (414.952, 35.0317, 98.8582),
    "adaptive": (352.824, 8.11825, 98.7633),
}

PAPER_IMPROVEMENT_PCT = 27.2

#: the static baselines the adaptive run is compared against
BASELINES = ("SFC", "G-MISP+SP", "pBD-ISP")


def _run(trace: AdaptationTrace, num_procs: int = 64) -> AdaptiveRunReport:
    runtime = PragmaRuntime(
        cluster=sp2_blue_horizon(num_procs), num_procs=num_procs
    )
    return runtime.run_adaptive(trace, compare_with=BASELINES)


def _digest(report: AdaptiveRunReport, num_procs: int | None = None) -> dict:
    results = {"adaptive": report.adaptive, **report.static}
    return {
        "num_procs": num_procs,
        "partitioners": {
            name: {
                "runtime_s": r.total_runtime,
                "imbalance_pct": r.mean_imbalance_pct,
                "efficiency_pct": r.amr_efficiency_pct,
            }
            for name, r in results.items()
        },
        "improvement_over_worst_pct": report.improvement_over_worst_pct,
        "adaptive_usage": dict(report.adaptive.partitioner_usage()),
    }


def run_scenario(ctx: ScenarioContext) -> dict:
    """Scenario entrypoint: replay the configured trace under the
    meta-partitioner and the static baselines; returns the JSON
    comparison digest."""
    num_procs = ctx.params.get("num_procs", 64)
    return _digest(_run(ctx.trace(), num_procs=num_procs), num_procs)


def render_scenario(result: dict) -> str:
    """Format the Table 4 comparison (ours vs paper) as text."""
    lines = [
        "Table 4 — Partitioner performance, RM3D on 64 processors",
        f"{'partitioner':>12} {'runtime(s)':>11} {'imbalance(%)':>13} "
        f"{'efficiency(%)':>14}   paper: rt / imb / eff",
    ]
    for name in (*BASELINES, "adaptive"):
        r = result["partitioners"][name]
        p = PAPER[name]
        lines.append(
            f"{name:>12} {r['runtime_s']:>11.1f} "
            f"{r['imbalance_pct']:>13.1f} {r['efficiency_pct']:>14.2f}"
            f"   {p[0]:.1f} / {p[1]:.1f} / {p[2]:.2f}"
        )
    lines.append(
        f"adaptive improvement over slowest: "
        f"{result['improvement_over_worst_pct']:.1f}% "
        f"(paper: {PAPER_IMPROVEMENT_PCT}%)"
    )
    lines.append(
        f"adaptive partitioner usage: {result['adaptive_usage']}"
    )
    return "\n".join(lines)


def run(trace: AdaptationTrace, num_procs: int = 64) -> AdaptiveRunReport:
    """Deprecated shim — use the ``table4`` scenario (:mod:`repro.sweep`)."""
    warn_deprecated("table4.run()", "table4.run_scenario(ctx)")
    return _run(trace, num_procs)


def render(report: AdaptiveRunReport) -> str:
    """Deprecated shim — use :func:`render_scenario` on the JSON digest."""
    warn_deprecated("table4.render()", "table4.render_scenario(result)")
    return render_scenario(_digest(report))
