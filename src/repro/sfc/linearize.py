"""Linearization of 3-D grids along space-filling curves."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.sfc.hilbert import hilbert_key
from repro.sfc.morton import morton_key

__all__ = ["CURVES", "curve_order", "curve_rank_of_cells"]

CURVES: dict[str, Callable] = {
    "morton": morton_key,
    "hilbert": hilbert_key,
}


def _bits_for(shape: Sequence[int]) -> int:
    top = max(shape)
    return max(1, int(np.ceil(np.log2(top))) if top > 1 else 1)


def _grid_coords(shape: Sequence[int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    sx, sy, sz = shape
    x, y, z = np.meshgrid(
        np.arange(sx), np.arange(sy), np.arange(sz), indexing="ij"
    )
    return x.reshape(-1), y.reshape(-1), z.reshape(-1)


def curve_order(shape: Sequence[int], curve: str = "hilbert") -> np.ndarray:
    """Permutation of flat C-order cell indices sorted along ``curve``.

    ``order[r]`` is the flat index of the ``r``-th cell along the curve.
    The sort is stable, so cells sharing a key (impossible for true SFC
    keys, but kept for safety) retain C order.
    """
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; choose from {sorted(CURVES)}")
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise ValueError(f"shape must be 3 positive extents, got {shape!r}")
    bits = _bits_for(shape)
    x, y, z = _grid_coords(shape)
    keys = CURVES[curve](x, y, z, bits)
    return np.argsort(keys, kind="stable")


def curve_rank_of_cells(shape: Sequence[int], curve: str = "hilbert") -> np.ndarray:
    """Inverse permutation: flat C-order cell index → rank along the curve."""
    order = curve_order(shape, curve)
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    return rank
