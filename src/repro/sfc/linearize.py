"""Linearization of 3-D grids along space-filling curves.

``curve_order`` is memoized by ``(shape, curve)``: the permutation for a
given lattice is a pure function of its extents and curve choice, and
the partitioning pipeline recomputes it for the same composite-unit
lattice on every regrid.  Cached permutations are returned as read-only
arrays (copy before mutating); the memo is bounded and evicts in
insertion order.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.sfc.hilbert import hilbert_key
from repro.sfc.morton import morton_key

__all__ = ["CURVES", "curve_order", "curve_rank_of_cells", "clear_curve_memo"]

CURVES: dict[str, Callable] = {
    "morton": morton_key,
    "hilbert": hilbert_key,
}

#: memoized (shape, curve) → read-only permutation; bounded FIFO
_ORDER_MEMO: dict[tuple[tuple[int, int, int], str], np.ndarray] = {}
#: memoized (shape, curve) → read-only inverse permutation (rank array)
_RANK_MEMO: dict[tuple[tuple[int, int, int], str], np.ndarray] = {}
_ORDER_MEMO_MAX = 64


def clear_curve_memo() -> None:
    """Drop all memoized curve permutations (mainly for tests)."""
    _ORDER_MEMO.clear()
    _RANK_MEMO.clear()


def _bits_for(shape: Sequence[int]) -> int:
    top = max(shape)
    return max(1, int(np.ceil(np.log2(top))) if top > 1 else 1)


def _grid_coords(shape: Sequence[int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    sx, sy, sz = shape
    x, y, z = np.meshgrid(
        np.arange(sx), np.arange(sy), np.arange(sz), indexing="ij"
    )
    return x.reshape(-1), y.reshape(-1), z.reshape(-1)


def curve_order(shape: Sequence[int], curve: str = "hilbert") -> np.ndarray:
    """Permutation of flat C-order cell indices sorted along ``curve``.

    ``order[r]`` is the flat index of the ``r``-th cell along the curve.
    The sort is stable, so cells sharing a key (impossible for true SFC
    keys, but kept for safety) retain C order.

    The result is memoized by ``(shape, curve)`` and returned as a
    read-only array — copy it before mutating.
    """
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; choose from {sorted(CURVES)}")
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise ValueError(f"shape must be 3 positive extents, got {shape!r}")
    memo_key = (shape, curve)
    cached = _ORDER_MEMO.get(memo_key)
    if cached is not None:
        obs.counter("sfc.curve_order.memo", outcome="hit").inc()
        return cached
    obs.counter("sfc.curve_order.memo", outcome="miss").inc()
    bits = _bits_for(shape)
    x, y, z = _grid_coords(shape)
    keys = CURVES[curve](x, y, z, bits)
    order = np.argsort(keys, kind="stable")
    order.setflags(write=False)
    while len(_ORDER_MEMO) >= _ORDER_MEMO_MAX:
        _ORDER_MEMO.pop(next(iter(_ORDER_MEMO)))
    _ORDER_MEMO[memo_key] = order
    return order


def curve_rank_of_cells(shape: Sequence[int], curve: str = "hilbert") -> np.ndarray:
    """Inverse permutation: flat C-order cell index → rank along the curve.

    Memoized alongside :func:`curve_order` (the inverse scatter was
    recomputed on every regrid interval); read-only like the order.
    """
    order = curve_order(shape, curve)
    memo_key = (tuple(int(s) for s in shape), curve)
    cached = _RANK_MEMO.get(memo_key)
    if cached is not None:
        return cached
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    rank.setflags(write=False)
    while len(_RANK_MEMO) >= _ORDER_MEMO_MAX:
        _RANK_MEMO.pop(next(iter(_RANK_MEMO)))
    _RANK_MEMO[memo_key] = rank
    return rank
