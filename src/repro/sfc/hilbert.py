"""Hilbert curve in 3-D via Skilling's transpose algorithm.

Reference: J. Skilling, "Programming the Hilbert curve", AIP Conf. Proc.
707 (2004).  The algorithm converts between coordinates and the "transpose"
form of the Hilbert index with O(bits) bitwise passes; every pass is a
vectorized numpy expression, so encoding a whole base grid is fast.
"""

from __future__ import annotations

import numpy as np

from repro.sfc.morton import interleave3, deinterleave3, _check_bits

__all__ = ["hilbert_key", "hilbert_decode"]


def hilbert_key(x: np.ndarray, y: np.ndarray, z: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert index of integer coordinates (each must fit in ``bits`` bits)."""
    _check_bits(bits)
    coords = [np.array(c, dtype=np.int64, copy=True) for c in (x, y, z)]
    for name, c in zip("xyz", coords):
        if c.size and (c.min() < 0 or c.max() >= (1 << bits)):
            raise ValueError(f"{name} coordinates out of range for {bits} bits")
    X = list(np.broadcast_arrays(*coords))
    X = [np.array(c, dtype=np.int64, copy=True) for c in X]
    n = 3

    # Inverse undo excess work (Skilling: AxestoTranspose).
    M = np.int64(1) << (bits - 1)
    Q = M
    while Q > 1:
        P = Q - 1
        for i in range(n):
            hit = (X[i] & Q) != 0
            # invert low bits of X[0] where axis bit set
            X[0] ^= np.where(hit, P, 0).astype(np.int64)
            # exchange low bits of X[0] and X[i] elsewhere
            t = np.where(~hit, (X[0] ^ X[i]) & P, 0).astype(np.int64)
            X[0] ^= t
            X[i] ^= t
        Q >>= 1

    # Gray encode.
    for i in range(1, n):
        X[i] ^= X[i - 1]
    t = np.zeros(X[0].shape, dtype=np.int64)
    Q = M
    while Q > 1:
        t ^= np.where((X[n - 1] & Q) != 0, Q - 1, 0).astype(np.int64)
        Q >>= 1
    for i in range(n):
        X[i] ^= t

    # The transpose interleaves with axis 0 most significant.
    return interleave3(X[0], X[1], X[2], bits)


def hilbert_decode(key: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coordinates of a Hilbert index (inverse of :func:`hilbert_key`)."""
    _check_bits(bits)
    X = list(deinterleave3(np.asarray(key, dtype=np.int64), bits))
    n = 3

    # Gray decode by H ^ (H / 2).
    t = X[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        X[i] ^= X[i - 1]
    X[0] ^= t

    # Undo excess work (Skilling: TransposetoAxes).
    M = np.int64(2) << (bits - 1)
    Q = np.int64(2)
    while Q != M:
        P = Q - 1
        for i in range(n - 1, -1, -1):
            hit = (X[i] & Q) != 0
            X[0] ^= np.where(hit, P, 0).astype(np.int64)
            t = np.where(~hit, (X[0] ^ X[i]) & P, 0).astype(np.int64)
            X[0] ^= t
            X[i] ^= t
        Q <<= 1

    return X[0], X[1], X[2]
