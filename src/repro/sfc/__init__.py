"""Space-filling curves for SAMR partitioning.

Every partitioner in the paper's suite except pure geometric bisection is
built on an inverse space-filling curve: the 3-D base grid is linearized
along a locality-preserving curve and the 1-D sequence is then partitioned.
This package provides vectorized Morton (Z-order) and Hilbert curves and
the linearization helpers the partitioners consume.
"""

from repro.sfc.morton import morton_key, morton_decode
from repro.sfc.hilbert import hilbert_key, hilbert_decode
from repro.sfc.linearize import (
    curve_order,
    curve_rank_of_cells,
    clear_curve_memo,
    CURVES,
)

__all__ = [
    "morton_key",
    "morton_decode",
    "hilbert_key",
    "hilbert_decode",
    "curve_order",
    "curve_rank_of_cells",
    "clear_curve_memo",
    "CURVES",
]
