"""Morton (Z-order) curve, vectorized over numpy integer arrays."""

from __future__ import annotations

import numpy as np

__all__ = ["morton_key", "morton_decode", "interleave3", "deinterleave3"]

_MAX_BITS = 21  # 3 * 21 = 63 bits fits an int64 key


def _check_bits(bits: int) -> None:
    if not (1 <= bits <= _MAX_BITS):
        raise ValueError(f"bits must be in [1, {_MAX_BITS}], got {bits}")


def interleave3(x: np.ndarray, y: np.ndarray, z: np.ndarray, bits: int) -> np.ndarray:
    """Interleave three ``bits``-wide coordinates into one key.

    Bit layout per input bit ``j`` (0 = LSB): ``x`` lands at ``3j + 2``,
    ``y`` at ``3j + 1``, ``z`` at ``3j`` — so ``x`` is the most significant
    axis, matching the transpose convention of the Hilbert encoder.
    """
    _check_bits(bits)
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    z = np.asarray(z, dtype=np.int64)
    key = np.zeros(np.broadcast(x, y, z).shape, dtype=np.int64)
    for j in range(bits):
        key |= ((x >> j) & 1) << (3 * j + 2)
        key |= ((y >> j) & 1) << (3 * j + 1)
        key |= ((z >> j) & 1) << (3 * j)
    return key


def deinterleave3(key: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`interleave3`."""
    _check_bits(bits)
    key = np.asarray(key, dtype=np.int64)
    x = np.zeros(key.shape, dtype=np.int64)
    y = np.zeros(key.shape, dtype=np.int64)
    z = np.zeros(key.shape, dtype=np.int64)
    for j in range(bits):
        x |= ((key >> (3 * j + 2)) & 1) << j
        y |= ((key >> (3 * j + 1)) & 1) << j
        z |= ((key >> (3 * j)) & 1) << j
    return x, y, z


def morton_key(x: np.ndarray, y: np.ndarray, z: np.ndarray, bits: int) -> np.ndarray:
    """Morton key of integer coordinates (each must fit in ``bits`` bits)."""
    for name, c in (("x", x), ("y", y), ("z", z)):
        arr = np.asarray(c)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << bits)):
            raise ValueError(f"{name} coordinates out of range for {bits} bits")
    return interleave3(x, y, z, bits)


def morton_decode(key: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coordinates of a Morton key (inverse of :func:`morton_key`)."""
    return deinterleave3(key, bits)
