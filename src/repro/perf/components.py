"""Simulated measurable components for PF modeling.

The Table 1 example system: two computers (PC1, PC2) running a matrix
multiplication, connected through an Ethernet switch.  Each component has a
hidden "true" timing model; :meth:`measure` draws noisy observations from
it, exactly as instrumenting real hardware would.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["SimulatedComponent", "MatMulHost", "EthernetSwitch"]


class SimulatedComponent(abc.ABC):
    """A component whose task time can be measured but not read directly."""

    def __init__(self, name: str, noise: float = 0.02, seed: int | None = 0) -> None:
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.name = name
        self.noise = noise
        self._rng = ensure_rng(seed)

    @abc.abstractmethod
    def true_time(self, data_size: np.ndarray | float) -> np.ndarray | float:
        """Hidden ground-truth task time for ``data_size`` bytes."""

    def measure(self, data_size: np.ndarray | float) -> np.ndarray | float:
        """One noisy timing measurement per requested size."""
        t = np.asarray(self.true_time(data_size), dtype=float)
        jitter = 1.0 + self.noise * self._rng.standard_normal(t.shape)
        out = np.maximum(t * jitter, 0.0)
        return float(out) if out.ndim == 0 else out

    def measure_repeated(
        self, data_size: float, repetitions: int
    ) -> np.ndarray:
        """Repeated measurements at one size (for averaging)."""
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        return np.asarray(
            [self.measure(data_size) for _ in range(repetitions)], dtype=float
        )


class MatMulHost(SimulatedComponent):
    """A PC running a matrix multiplication over a D-byte payload.

    ``D`` bytes of float64 form an n x n matrix with ``n = sqrt(D / 8)``;
    the multiply costs ``2 n^3`` flops plus fixed software overhead — i.e.
    ``t(D) = overhead + (2 / flops) * (D / 8)^1.5``.  Defaults are
    calibrated so the composed PC1-switch-PC2 round trip lands on the
    paper's measured millisecond-scale delays (Table 1).
    """

    def __init__(
        self,
        name: str = "pc",
        *,
        overhead: float = 3.1e-4,
        flops: float = 4.1e6,
        noise: float = 0.02,
        seed: int | None = 0,
    ) -> None:
        super().__init__(name, noise, seed)
        if overhead < 0 or flops <= 0:
            raise ValueError("overhead must be >= 0 and flops positive")
        self.overhead = overhead
        self.flops = flops

    def true_time(self, data_size: np.ndarray | float) -> np.ndarray | float:
        d = np.asarray(data_size, dtype=float)
        if (d < 0).any():
            raise ValueError("data_size must be >= 0")
        n_cubed = (d / 8.0) ** 1.5
        out = self.overhead + 2.0 * n_cubed / self.flops
        return float(out) if out.ndim == 0 else out


class EthernetSwitch(SimulatedComponent):
    """Store-and-forward Ethernet switch: latency plus serialization."""

    def __init__(
        self,
        name: str = "switch",
        *,
        latency: float = 5.0e-5,
        bandwidth: float = 5.0e6,
        noise: float = 0.02,
        seed: int | None = 0,
    ) -> None:
        super().__init__(name, noise, seed)
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth positive")
        self.latency = latency
        self.bandwidth = bandwidth

    def true_time(self, data_size: np.ndarray | float) -> np.ndarray | float:
        d = np.asarray(data_size, dtype=float)
        if (d < 0).any():
            raise ValueError("data_size must be >= 0")
        out = self.latency + d / self.bandwidth
        return float(out) if out.ndim == 0 else out
