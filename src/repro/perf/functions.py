"""Performance-function objects and their composition algebra."""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

__all__ = ["PerformanceFunction", "CallablePF", "SumPF", "MaxPF", "ScaledPF"]


class PerformanceFunction(abc.ABC):
    """Maps an attribute value (e.g. data size) to a performance metric.

    PFs are vectorized: ``predict`` accepts scalars or arrays.  Composition
    follows the paper's control-theory analogy — components in series sum
    their delays (:class:`SumPF`, Eq. 2), concurrent branches bound by the
    slowest (:class:`MaxPF`).
    """

    #: attribute the PF is expressed over (documentation/diagnostics)
    attribute: str = "data_size"
    #: metric the PF returns
    metric: str = "delay"

    @abc.abstractmethod
    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Metric value(s) at attribute value(s) ``x``."""

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.predict(x)

    def __add__(self, other: "PerformanceFunction") -> "SumPF":
        return SumPF([self, other])


class CallablePF(PerformanceFunction):
    """Adapts a plain function (an analytical model) into a PF."""

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        name: str = "callable",
        attribute: str = "data_size",
        metric: str = "delay",
    ) -> None:
        self._fn = fn
        self.name = name
        self.attribute = attribute
        self.metric = metric

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        return self._fn(np.asarray(x, dtype=float))


class SumPF(PerformanceFunction):
    """Series composition: total delay is the sum of stage delays (Eq. 2)."""

    def __init__(self, parts: Sequence[PerformanceFunction]) -> None:
        if not parts:
            raise ValueError("SumPF requires at least one part")
        attrs = {p.attribute for p in parts}
        if len(attrs) > 1:
            raise ValueError(f"cannot sum PFs over different attributes: {attrs}")
        self.parts = list(parts)
        self.attribute = self.parts[0].attribute

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        out = self.parts[0].predict(x)
        for p in self.parts[1:]:
            out = out + p.predict(x)
        return out


class MaxPF(PerformanceFunction):
    """Parallel composition: concurrent stages bound by the slowest."""

    def __init__(self, parts: Sequence[PerformanceFunction]) -> None:
        if not parts:
            raise ValueError("MaxPF requires at least one part")
        attrs = {p.attribute for p in parts}
        if len(attrs) > 1:
            raise ValueError(f"cannot max PFs over different attributes: {attrs}")
        self.parts = list(parts)
        self.attribute = self.parts[0].attribute

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        out = self.parts[0].predict(x)
        for p in self.parts[1:]:
            out = np.maximum(out, p.predict(x))
        return out


class ScaledPF(PerformanceFunction):
    """A PF repeated ``factor`` times (e.g. a link traversed twice)."""

    def __init__(self, inner: PerformanceFunction, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.inner = inner
        self.factor = factor
        self.attribute = inner.attribute
        self.metric = inner.metric

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.factor * self.inner.predict(x)
