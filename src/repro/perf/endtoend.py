"""The PF modeling experiment of Table 1.

Two PCs connected through an Ethernet switch run a ping-pong matrix
multiplication; each component's PF is fitted from noisy measurements and
the end-to-end PF is their summation (Eq. 2).  The experiment then compares
composed-PF predictions against measured end-to-end delays at held-out data
sizes and reports the percentage error — the paper observes 0.5–5 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.perf.components import EthernetSwitch, MatMulHost
from repro.perf.fitting import FittedPF, fit_neural
from repro.perf.functions import SumPF
from repro.util.rng import ensure_rng
from repro.util.stats import relative_error

__all__ = ["PFAccuracyRow", "PFModelingExperiment"]

#: The data sizes of Table 1, in bytes.
TABLE1_SIZES = (200, 400, 600, 800, 1000)


@dataclass(frozen=True, slots=True)
class PFAccuracyRow:
    """One row of Table 1."""

    data_size: int
    predicted: float
    measured: float
    error_pct: float


class PFModelingExperiment:
    """Fit per-component PFs, compose, and validate end-to-end.

    Parameters
    ----------
    fitter:
        PF fitting backend: ``(x, y, name) -> FittedPF``.  Defaults to the
        neural fitter, matching the paper's method.
    train_sizes:
        Data sizes (bytes) at which components are instrumented.
    repetitions:
        Timing repetitions per training size (measurements are averaged).
    """

    def __init__(
        self,
        *,
        fitter: Callable[..., FittedPF] | None = None,
        train_sizes: Sequence[int] | None = None,
        repetitions: int = 5,
        noise: float = 0.02,
        seed: int = 0,
    ) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        rng = ensure_rng(seed)
        seeds = rng.integers(0, 2**31 - 1, size=4)
        self.pc1 = MatMulHost("pc1", noise=noise, seed=int(seeds[0]))
        self.pc2 = MatMulHost("pc2", noise=noise, seed=int(seeds[1]))
        self.switch = EthernetSwitch("switch", noise=noise, seed=int(seeds[2]))
        self._measure_rng = ensure_rng(int(seeds[3]))
        self.fitter = fitter or (
            lambda x, y, name: fit_neural(x, y, name=name, seed=0)
        )
        self.train_sizes = np.asarray(
            train_sizes
            if train_sizes is not None
            else np.arange(100, 1201, 50),
            dtype=float,
        )
        self.repetitions = repetitions
        self.component_pfs: dict[str, FittedPF] = {}
        self.end_to_end: SumPF | None = None

    # -- step 2: fit per-component PFs ------------------------------------------------

    def fit(self) -> SumPF:
        """Instrument each component, fit its PF, compose the end-to-end PF."""
        for comp in (self.pc1, self.switch, self.pc2):
            y = np.array(
                [
                    comp.measure_repeated(size, self.repetitions).mean()
                    for size in self.train_sizes
                ]
            )
            self.component_pfs[comp.name] = self.fitter(
                self.train_sizes, y, name=comp.name
            )
        self.end_to_end = SumPF(
            [
                self.component_pfs["pc1"],
                self.component_pfs["switch"],
                self.component_pfs["pc2"],
            ]
        )
        return self.end_to_end

    # -- step 3: validate against measured end-to-end delays ---------------------------

    def measured_end_to_end(self, data_size: float) -> float:
        """One measured response time PC1 → switch → PC2 at ``data_size``."""
        return float(
            self.pc1.measure(data_size)
            + self.switch.measure(data_size)
            + self.pc2.measure(data_size)
        )

    def evaluate(
        self, sizes: Sequence[int] = TABLE1_SIZES, repetitions: int = 5
    ) -> list[PFAccuracyRow]:
        """Produce Table 1: predicted vs measured delay and % error."""
        if self.end_to_end is None:
            self.fit()
        rows = []
        for size in sizes:
            predicted = float(self.end_to_end.predict(float(size)))
            measured = float(
                np.mean([self.measured_end_to_end(size) for _ in range(repetitions)])
            )
            rows.append(
                PFAccuracyRow(
                    data_size=int(size),
                    predicted=predicted,
                    measured=measured,
                    error_pct=relative_error(predicted, measured),
                )
            )
        return rows
