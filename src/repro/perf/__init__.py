"""Performance Functions (PFs): fit, compose, predict.

Section 3.2: a PF "describes the behavior of a system component ... in
terms of changes in one or more of its attributes"; component PFs are fit
from measurements (the paper feeds them to a neural network) and composed
into an end-to-end PF analogous to block transfer functions in control
theory.  This package implements the three-step method — attribute
selection, per-component fitting, composition — and the Table 1
experiment that validates it.
"""

from repro.perf.functions import (
    PerformanceFunction,
    CallablePF,
    SumPF,
    MaxPF,
    ScaledPF,
)
from repro.perf.fitting import FittedPF, fit_polynomial, fit_neural
from repro.perf.components import SimulatedComponent, MatMulHost, EthernetSwitch
from repro.perf.endtoend import PFModelingExperiment, PFAccuracyRow

__all__ = [
    "PerformanceFunction",
    "CallablePF",
    "SumPF",
    "MaxPF",
    "ScaledPF",
    "FittedPF",
    "fit_polynomial",
    "fit_neural",
    "SimulatedComponent",
    "MatMulHost",
    "EthernetSwitch",
    "PFModelingExperiment",
    "PFAccuracyRow",
]
