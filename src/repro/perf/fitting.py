"""Fitting performance functions from measurements.

The paper: "we measure the task processing time in terms of data size, and
then feed these measurements to a neural network to obtain the
corresponding PF."  We provide that neural backend (a small numpy MLP
trained with Adam) plus a least-squares polynomial backend for cheap cases
and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.perf.functions import PerformanceFunction
from repro.util.rng import ensure_rng

__all__ = ["FittedPF", "fit_polynomial", "fit_neural"]


class FittedPF(PerformanceFunction):
    """A PF backed by a fitted model plus training metadata."""

    def __init__(
        self,
        predict_fn,
        *,
        name: str,
        train_x: np.ndarray,
        train_y: np.ndarray,
        attribute: str = "data_size",
        metric: str = "delay",
    ) -> None:
        self._predict_fn = predict_fn
        self.name = name
        self.train_x = np.asarray(train_x, dtype=float)
        self.train_y = np.asarray(train_y, dtype=float)
        self.attribute = attribute
        self.metric = metric

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        arr = np.asarray(x, dtype=float)
        out = self._predict_fn(arr)
        if np.isscalar(x) or arr.ndim == 0:
            return float(out)
        return out

    def training_rmse(self) -> float:
        """Root-mean-square error on the training set."""
        pred = np.asarray(self.predict(self.train_x), dtype=float)
        return float(np.sqrt(np.mean((pred - self.train_y) ** 2)))


def _check_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size:
        raise ValueError(f"x and y sizes differ: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need at least 2 training points")
    return x, y


def fit_polynomial(
    x: np.ndarray, y: np.ndarray, degree: int = 2, name: str = "poly"
) -> FittedPF:
    """Least-squares polynomial PF of the given degree."""
    x, y = _check_xy(x, y)
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    if degree >= x.size:
        raise ValueError(
            f"degree {degree} too high for {x.size} training points"
        )
    coeffs = np.polyfit(x, y, degree)

    def predict(arr: np.ndarray) -> np.ndarray:
        return np.polyval(coeffs, arr)

    return FittedPF(predict, name=f"{name}(deg={degree})", train_x=x, train_y=y)


def fit_neural(
    x: np.ndarray,
    y: np.ndarray,
    *,
    hidden: int = 16,
    epochs: int = 3000,
    lr: float = 0.01,
    seed: int = 0,
    name: str = "mlp",
) -> FittedPF:
    """One-hidden-layer tanh MLP trained with full-batch Adam.

    Inputs and outputs are standardized internally, so delays in seconds
    (1e-4 scale) train as well as loads in the thousands.  On the paper's
    ~dozen-point training sets this takes milliseconds.
    """
    x, y = _check_xy(x, y)
    if hidden < 1:
        raise ValueError(f"hidden must be >= 1, got {hidden}")
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    rng = ensure_rng(seed)

    x_mu, x_sd = x.mean(), max(x.std(), 1e-12)
    y_mu, y_sd = y.mean(), max(y.std(), 1e-12)
    xs = ((x - x_mu) / x_sd)[:, None]
    ys = ((y - y_mu) / y_sd)[:, None]

    w1 = rng.standard_normal((1, hidden)) / np.sqrt(1.0)
    b1 = np.zeros((1, hidden))
    w2 = rng.standard_normal((hidden, 1)) / np.sqrt(hidden)
    b2 = np.zeros((1, 1))
    params = [w1, b1, w2, b2]
    m = [np.zeros_like(p) for p in params]
    v = [np.zeros_like(p) for p in params]
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    n = xs.shape[0]
    for t in range(1, epochs + 1):
        h = np.tanh(xs @ w1 + b1)
        pred = h @ w2 + b2
        err = pred - ys
        # Backprop of MSE.
        g_pred = 2.0 * err / n
        g_w2 = h.T @ g_pred
        g_b2 = g_pred.sum(0, keepdims=True)
        g_h = g_pred @ w2.T
        g_pre = g_h * (1.0 - h * h)
        g_w1 = xs.T @ g_pre
        g_b1 = g_pre.sum(0, keepdims=True)
        grads = [g_w1, g_b1, g_w2, g_b2]
        for i, (p, g) in enumerate(zip(params, grads)):
            m[i] = beta1 * m[i] + (1 - beta1) * g
            v[i] = beta2 * v[i] + (1 - beta2) * g * g
            mh = m[i] / (1 - beta1**t)
            vh = v[i] / (1 - beta2**t)
            p -= lr * mh / (np.sqrt(vh) + eps)

    def predict(arr: np.ndarray) -> np.ndarray:
        xn = ((arr - x_mu) / x_sd).reshape(-1, 1)
        out = np.tanh(xn @ w1 + b1) @ w2 + b2
        return (out * y_sd + y_mu).reshape(np.shape(arr))

    return FittedPF(predict, name=f"{name}(h={hidden})", train_x=x, train_y=y)
