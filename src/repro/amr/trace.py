"""Adaptation traces — the paper's grid-hierarchy "snap-shots".

Section 4.5: *"the adaptive behavior of the application was captured in an
adaptation trace generated using a single processor run.  The adaptation
trace contains snap-shots of the SAMR grid hierarchy at each regrid step."*

A :class:`Snapshot` is one such capture; an :class:`AdaptationTrace` is the
ordered sequence over a run, with JSON (de)serialization so traces can be
generated once and replayed through partitioners and the execution
simulator.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.amr.hierarchy import GridHierarchy

__all__ = ["Snapshot", "AdaptationTrace"]


@dataclass(slots=True)
class Snapshot:
    """One regrid step's grid hierarchy plus bookkeeping."""

    step: int
    hierarchy: GridHierarchy

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")

    @property
    def num_patches(self) -> int:
        """Patch count of the snapshot's hierarchy."""
        return self.hierarchy.num_patches

    @property
    def total_cells(self) -> int:
        """Total cells over all levels."""
        return self.hierarchy.total_cells

    @property
    def load(self) -> float:
        """Load of one coarse step of this hierarchy."""
        return self.hierarchy.load_per_coarse_step()

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {"step": self.step, "hierarchy": self.hierarchy.to_dict()}

    @classmethod
    def from_dict(cls, d: dict) -> "Snapshot":
        """Inverse of :meth:`to_dict`."""
        return cls(step=d["step"], hierarchy=GridHierarchy.from_dict(d["hierarchy"]))


@dataclass(slots=True)
class AdaptationTrace:
    """Ordered sequence of snapshots from a single-processor trace run."""

    snapshots: list[Snapshot] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        steps = [s.step for s in self.snapshots]
        if any(b <= a for a, b in zip(steps, steps[1:])):
            raise ValueError("snapshot steps must be strictly increasing")

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self.snapshots)

    def __getitem__(self, i: int) -> Snapshot:
        return self.snapshots[i]

    def append(self, snap: Snapshot) -> None:
        """Add a snapshot; steps must stay strictly increasing."""
        if self.snapshots and snap.step <= self.snapshots[-1].step:
            raise ValueError(
                f"snapshot step {snap.step} not after {self.snapshots[-1].step}"
            )
        self.snapshots.append(snap)

    def at_step(self, step: int) -> Snapshot:
        """The snapshot governing ``step``: the latest one with step <= given.

        Between regrids the hierarchy is unchanged, so the most recent
        snapshot describes the application at any intermediate time step.
        """
        if not self.snapshots:
            raise ValueError("trace is empty")
        if step < self.snapshots[0].step:
            raise ValueError(
                f"step {step} precedes first snapshot at {self.snapshots[0].step}"
            )
        best = self.snapshots[0]
        for s in self.snapshots:
            if s.step <= step:
                best = s
            else:
                break
        return best

    # -- summary statistics -----------------------------------------------------

    def steps(self) -> list[int]:
        """Regrid steps present in the trace."""
        return [s.step for s in self.snapshots]

    def load_series(self) -> np.ndarray:
        """Per-snapshot hierarchy load (one coarse step each)."""
        return np.array([s.load for s in self.snapshots], dtype=float)

    def patch_count_series(self) -> np.ndarray:
        """Per-snapshot patch count."""
        return np.array([s.num_patches for s in self.snapshots], dtype=int)

    def refinement_activity(self) -> np.ndarray:
        """|Δ total cells| between consecutive snapshots, normalized.

        This is the raw "activity dynamics" signal the octant classifier
        thresholds: rapidly moving fronts create large step-to-step changes
        in where (and how much) refinement exists.
        """
        cells = np.array([s.total_cells for s in self.snapshots], dtype=float)
        if len(cells) < 2:
            return np.zeros(0)
        return np.abs(np.diff(cells)) / np.maximum(cells[:-1], 1.0)

    def dirty_fractions(self) -> np.ndarray:
        """Base-grid dirty fraction of each snapshot-to-snapshot transition.

        Entry ``k`` is the fraction of base cells the incremental regrid
        path must recompute going from snapshot ``k`` to ``k+1`` (1.0 for
        incompatible transitions).  This is the trace's *reuse potential*:
        the lower the fractions, the more the execution simulator's
        :class:`~repro.execsim.reuse.UnitsReuseCache` saves.
        """
        from repro.amr.diff import diff_hierarchies

        if len(self.snapshots) < 2:
            return np.zeros(0)
        return np.array(
            [
                diff_hierarchies(a.hierarchy, b.hierarchy).dirty_fraction
                for a, b in zip(self.snapshots, self.snapshots[1:])
            ],
            dtype=float,
        )

    # -- persistence ----------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the full trace to a JSON string."""
        return json.dumps(
            {"meta": self.meta, "snapshots": [s.to_dict() for s in self.snapshots]}
        )

    @classmethod
    def from_json(cls, text: str) -> "AdaptationTrace":
        """Inverse of :meth:`to_json`."""
        d = json.loads(text)
        return cls(
            snapshots=[Snapshot.from_dict(s) for s in d["snapshots"]],
            meta=d.get("meta", {}),
        )

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` (gzip-compressed JSON)."""
        Path(path).write_bytes(gzip.compress(self.to_json().encode()))

    @classmethod
    def load(cls, path: str | Path) -> "AdaptationTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_json(gzip.decompress(Path(path).read_bytes()).decode())
