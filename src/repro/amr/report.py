"""Human-readable summaries of hierarchies and traces.

Inspection helpers for interactive use: a per-level table for one
hierarchy, and a phase overview for a whole adaptation trace.
"""

from __future__ import annotations

from repro.amr.hierarchy import GridHierarchy
from repro.amr.trace import AdaptationTrace

__all__ = ["hierarchy_report", "trace_report"]


def hierarchy_report(hierarchy: GridHierarchy) -> str:
    """Per-level table: patches, cells, refined fraction, load share."""
    total_load = hierarchy.load_per_coarse_step()
    lines = [
        f"GridHierarchy over {hierarchy.domain.shape} "
        f"({hierarchy.num_levels} levels, {hierarchy.num_patches} patches, "
        f"load {total_load:.4g}/coarse step)",
        f"{'level':>6} {'ratio':>6} {'patches':>8} {'cells':>10} "
        f"{'refined%':>9} {'load%':>7}",
    ]
    for lvl in hierarchy.levels:
        cum = hierarchy.cumulative_ratio(lvl.index)
        load = lvl.load * cum
        refined = 100.0 * hierarchy.refined_fraction(lvl.index)
        share = 100.0 * load / total_load if total_load else 0.0
        lines.append(
            f"{lvl.index:>6} {lvl.ratio:>6} {len(lvl):>8} "
            f"{lvl.num_cells:>10} {refined:>9.2f} {share:>7.1f}"
        )
    return "\n".join(lines)


def trace_report(trace: AdaptationTrace, every: int = 10) -> str:
    """Trace overview: load/patch-count series sampled every ``every``
    snapshots, plus aggregate statistics."""
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    loads = trace.load_series()
    patches = trace.patch_count_series()
    lines = [
        f"AdaptationTrace: {len(trace)} snapshots "
        f"(steps {trace.steps()[0] if len(trace) else '-'}"
        f"..{trace.steps()[-1] if len(trace) else '-'}), "
        f"app={trace.meta.get('app', '?')}",
    ]
    if len(trace):
        lines.append(
            f"load: min {loads.min():.3g} / mean {loads.mean():.3g} / "
            f"max {loads.max():.3g}; patches: min {patches.min()} / "
            f"max {patches.max()}"
        )
        lines.append(f"{'snapshot':>9} {'step':>6} {'patches':>8} {'load':>12}")
        for i in range(0, len(trace), every):
            s = trace[i]
            lines.append(
                f"{i:>9} {s.step:>6} {s.num_patches:>8} {s.load:>12.4g}"
            )
    return "\n".join(lines)
