"""Structured adaptive mesh refinement (SAMR) substrate.

The paper's meta-partitioner operates on Berger–Colella style structured
AMR grid hierarchies: a coarse base grid plus nested levels of factor-``r``
refined patches that track features of the solution.  This package supplies
that substrate:

- :mod:`repro.amr.box` — integer index-space box algebra,
- :mod:`repro.amr.grid` — patches and levels,
- :mod:`repro.amr.hierarchy` — the grid hierarchy container,
- :mod:`repro.amr.clustering` — Berger–Rigoutsos point clustering,
- :mod:`repro.amr.regrid` — flag → cluster → refine regridding,
- :mod:`repro.amr.workload` — composite load maps over the base grid,
- :mod:`repro.amr.trace` — adaptation traces (the paper's "snap-shots"),
- :mod:`repro.amr.diff` — hierarchy diffing for the incremental regrid
  path (dirty-region detection between successive snapshots).
"""

from repro.amr.box import Box
from repro.amr.grid import Patch, Level
from repro.amr.hierarchy import GridHierarchy
from repro.amr.clustering import cluster_flags
from repro.amr.diff import HierarchyDiff, diff_hierarchies
from repro.amr.regrid import Regridder, RegridPolicy
from repro.amr.workload import (
    WorkloadMap,
    composite_load_map,
    update_composite_load_map,
)
from repro.amr.trace import AdaptationTrace, Snapshot
from repro.amr.report import hierarchy_report, trace_report

__all__ = [
    "Box",
    "Patch",
    "Level",
    "GridHierarchy",
    "HierarchyDiff",
    "cluster_flags",
    "diff_hierarchies",
    "Regridder",
    "RegridPolicy",
    "WorkloadMap",
    "composite_load_map",
    "update_composite_load_map",
    "AdaptationTrace",
    "Snapshot",
    "hierarchy_report",
    "trace_report",
]
