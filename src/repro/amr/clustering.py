"""Berger–Rigoutsos point clustering.

Turns a boolean array of error-flagged cells into a small set of rectangular
boxes that cover every flag with at least a target efficiency (fraction of
cells inside each box that are actually flagged).  This is the standard
clustering step between error estimation and refinement in SAMR regridding.
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box

__all__ = ["cluster_flags"]


def cluster_flags(
    flags: np.ndarray,
    *,
    min_efficiency: float = 0.7,
    min_width: int = 2,
    max_boxes: int = 4096,
    origin: tuple[int, int, int] = (0, 0, 0),
) -> list[Box]:
    """Cluster flagged cells into boxes (Berger–Rigoutsos).

    Parameters
    ----------
    flags:
        3-D boolean array; ``True`` marks a cell needing refinement.
    min_efficiency:
        Accept a box once ``flagged cells / box cells >= min_efficiency``.
    min_width:
        Never produce a box narrower than this along any axis (boxes are
        not split below it; accepted boxes may still be narrower if the
        flag region itself is).
    max_boxes:
        Safety cap on recursion fan-out.
    origin:
        Index-space coordinates of ``flags[0, 0, 0]``; returned boxes are
        expressed in that index space.

    Returns
    -------
    list[Box]
        Disjoint boxes jointly covering every flagged cell.  Empty input
        (no flags) returns an empty list.
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 3:
        raise ValueError(f"flags must be 3-D, got shape {flags.shape}")
    if not (0.0 < min_efficiency <= 1.0):
        raise ValueError(f"min_efficiency must be in (0, 1], got {min_efficiency}")
    if min_width < 1:
        raise ValueError(f"min_width must be >= 1, got {min_width}")
    if not flags.any():
        return []

    out: list[Box] = []
    _cluster(flags, origin, min_efficiency, min_width, max_boxes, out)
    return out


def _bounding_box(flags: np.ndarray) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
    """Tight (lo, hi) of the flagged region in local array coordinates."""
    idx = np.nonzero(flags)
    lo = tuple(int(a.min()) for a in idx)
    hi = tuple(int(a.max()) + 1 for a in idx)
    return lo, hi  # type: ignore[return-value]


def _cluster(
    flags: np.ndarray,
    origin: tuple[int, int, int],
    min_eff: float,
    min_width: int,
    max_boxes: int,
    out: list[Box],
) -> None:
    if not flags.any():
        return
    lo, hi = _bounding_box(flags)
    sub = flags[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    sub_origin = tuple(o + l for o, l in zip(origin, lo))
    efficiency = sub.mean()
    shape = sub.shape

    splittable_axes = [a for a in range(3) if shape[a] >= 2 * min_width]
    if efficiency >= min_eff or not splittable_axes or len(out) >= max_boxes - 1:
        out.append(Box.from_shape(shape, sub_origin))
        return

    cut = _choose_cut(sub, splittable_axes, min_width)
    if cut is None:
        out.append(Box.from_shape(shape, sub_origin))
        return
    axis, pos = cut
    lo_slice = [slice(None)] * 3
    hi_slice = [slice(None)] * 3
    lo_slice[axis] = slice(0, pos)
    hi_slice[axis] = slice(pos, shape[axis])
    _cluster(sub[tuple(lo_slice)], sub_origin, min_eff, min_width, max_boxes, out)
    shifted = list(sub_origin)
    shifted[axis] += pos
    _cluster(sub[tuple(hi_slice)], tuple(shifted), min_eff, min_width, max_boxes, out)


def _choose_cut(
    sub: np.ndarray, axes: list[int], min_width: int
) -> tuple[int, int] | None:
    """Pick a (axis, position) cut: holes first, then steepest Laplacian sign
    change in the flag signature, then the midpoint of the longest axis."""
    # 1. Holes: a zero in the signature means the flag region is separable.
    best_hole: tuple[int, int] | None = None
    for axis in axes:
        sig = _signature(sub, axis)
        interior = np.nonzero(sig[min_width:len(sig) - min_width] == 0)[0]
        if interior.size:
            pos = int(interior[0]) + min_width
            # Prefer the hole closest to the center of its axis.
            if best_hole is None:
                best_hole = (axis, pos)
    if best_hole is not None:
        return best_hole

    # 2. Inflection: largest jump in the discrete Laplacian of the signature.
    best: tuple[int, int, float] | None = None
    for axis in axes:
        sig = _signature(sub, axis).astype(float)
        if len(sig) < 4:
            continue
        lap = sig[:-2] - 2.0 * sig[1:-1] + sig[2:]
        jumps = np.abs(np.diff(lap))
        valid = np.arange(len(jumps)) + 2  # cut position after cell i+1
        mask = (valid >= min_width) & (valid <= len(sig) - min_width)
        if not mask.any():
            continue
        j = int(np.argmax(np.where(mask, jumps, -1.0)))
        if jumps[j] > 0 and (best is None or jumps[j] > best[2]):
            best = (axis, int(valid[j]), float(jumps[j]))
    if best is not None:
        return best[0], best[1]

    # 3. Fallback: halve the longest splittable axis.
    axis = max(axes, key=lambda a: sub.shape[a])
    pos = sub.shape[axis] // 2
    if pos < min_width or sub.shape[axis] - pos < min_width:
        return None
    return axis, pos


def _signature(sub: np.ndarray, axis: int) -> np.ndarray:
    """Flag counts collapsed onto ``axis`` (the B-R 'signature')."""
    other = tuple(a for a in range(3) if a != axis)
    return sub.sum(axis=other)
