"""Patches and refinement levels of a SAMR hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.amr.box import Box

__all__ = ["Patch", "Level"]


@dataclass(frozen=True, slots=True)
class Patch:
    """A rectangular grid patch at one refinement level.

    ``box`` lives in the *level's own* index space (i.e. already refined).
    ``load_per_cell`` captures heterogeneous physics cost: the paper notes
    that "the local physics may change significantly from zone to zone as
    fronts move through the system", so cost per zone is not uniform.
    """

    box: Box
    level: int
    patch_id: int
    load_per_cell: float = 1.0

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")
        if self.load_per_cell < 0:
            raise ValueError(f"load_per_cell must be >= 0, got {self.load_per_cell}")

    @property
    def num_cells(self) -> int:
        """Cells in the patch (level index space)."""
        return self.box.num_cells

    @property
    def load(self) -> float:
        """Total computational load of one solver sweep over the patch."""
        return self.num_cells * self.load_per_cell

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "box": self.box.to_dict(),
            "level": self.level,
            "patch_id": self.patch_id,
            "load_per_cell": self.load_per_cell,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Patch":
        """Inverse of :meth:`to_dict`."""
        return cls(
            box=Box.from_dict(d["box"]),
            level=d["level"],
            patch_id=d["patch_id"],
            load_per_cell=d.get("load_per_cell", 1.0),
        )


@dataclass(slots=True)
class Level:
    """One refinement level: a set of non-overlapping patches.

    ``ratio`` is the refinement ratio *from the next coarser level to this
    one* (1 for the base level).  Patch boxes are expressed in this level's
    index space.
    """

    index: int
    ratio: int
    patches: list[Patch] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"level index must be >= 0, got {self.index}")
        if self.ratio < 1:
            raise ValueError(f"refinement ratio must be >= 1, got {self.ratio}")
        for p in self.patches:
            if p.level != self.index:
                raise ValueError(
                    f"patch {p.patch_id} declares level {p.level}, "
                    f"stored in level {self.index}"
                )

    def __iter__(self) -> Iterator[Patch]:
        return iter(self.patches)

    def __len__(self) -> int:
        return len(self.patches)

    @property
    def num_cells(self) -> int:
        """Total cells over all patches of the level."""
        return sum(p.num_cells for p in self.patches)

    @property
    def load(self) -> float:
        """Total single-sweep computational load of the level."""
        return sum(p.load for p in self.patches)

    def add(self, patch: Patch) -> None:
        """Append a patch, enforcing level consistency and non-overlap."""
        if patch.level != self.index:
            raise ValueError(
                f"patch level {patch.level} does not match level index {self.index}"
            )
        for existing in self.patches:
            if existing.box.intersects(patch.box):
                raise ValueError(
                    f"patch {patch.patch_id} overlaps patch {existing.patch_id} "
                    f"on level {self.index}"
                )
        self.patches.append(patch)

    def covered_fraction_of(self, box: Box) -> float:
        """Fraction of ``box`` (in this level's index space) covered by patches."""
        if box.num_cells == 0:
            return 0.0
        covered = 0
        for p in self.patches:
            inter = p.box.intersection(box)
            if inter is not None:
                covered += inter.num_cells
        return covered / box.num_cells

    def bounding_box(self) -> Box | None:
        """Smallest box containing every patch, or ``None`` if empty."""
        if not self.patches:
            return None
        out = self.patches[0].box
        for p in self.patches[1:]:
            out = out.bounding_union(p.box)
        return out

    def centroid_spread(self) -> float:
        """RMS distance of patch centroids from their mean, in base-grid cells.

        Used by the octant classifier as the "scattered vs localized"
        signal: scattered adaptation has patch centroids spread across the
        domain, localized adaptation concentrates them.
        """
        if not self.patches:
            return 0.0
        pts = np.array([p.box.centroid for p in self.patches], dtype=float)
        # Normalize to the base index space so levels are comparable.
        scale = 1.0
        if self.index > 0:
            scale = 1.0  # boxes are already in level space; caller rescales.
        center = pts.mean(axis=0)
        return float(np.sqrt(((pts - center) ** 2).sum(axis=1).mean())) * scale

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "index": self.index,
            "ratio": self.ratio,
            "patches": [p.to_dict() for p in self.patches],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Level":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=d["index"],
            ratio=d["ratio"],
            patches=[Patch.from_dict(p) for p in d["patches"]],
        )
