"""The SAMR grid hierarchy container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.amr.box import Box
from repro.amr.grid import Level, Patch

__all__ = ["GridHierarchy"]


@dataclass(slots=True)
class GridHierarchy:
    """A Berger–Colella grid hierarchy: base domain plus refined levels.

    ``domain`` is the base (level 0) index-space box.  ``levels[0]`` always
    covers exactly the domain with one or more base patches.  With
    space-*time* refinement (the paper's "multiple independent timesteps"),
    a level refined by cumulative factor ``R`` takes ``R`` solver sweeps per
    coarse time step; :meth:`load_per_coarse_step` accounts for that.
    """

    domain: Box
    levels: list[Level] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            base = Level(index=0, ratio=1)
            base.add(Patch(box=self.domain, level=0, patch_id=0))
            self.levels = [base]
        if self.levels[0].ratio != 1:
            raise ValueError("base level must have ratio 1")
        for i, lvl in enumerate(self.levels):
            if lvl.index != i:
                raise ValueError(f"level at position {i} has index {lvl.index}")

    # -- basic structure ---------------------------------------------------------

    def __iter__(self) -> Iterator[Level]:
        return iter(self.levels)

    @property
    def num_levels(self) -> int:
        """Number of levels including the base."""
        return len(self.levels)

    @property
    def num_patches(self) -> int:
        """Total patch count over all levels."""
        return sum(len(lvl) for lvl in self.levels)

    def cumulative_ratio(self, level: int) -> int:
        """Product of refinement ratios from the base up to ``level``."""
        if not (0 <= level < self.num_levels):
            raise ValueError(f"level {level} out of range [0, {self.num_levels})")
        r = 1
        for lvl in self.levels[1 : level + 1]:
            r *= lvl.ratio
        return r

    def level_domain(self, level: int) -> Box:
        """The whole domain expressed in ``level``'s index space."""
        return self.domain.refine(self.cumulative_ratio(level))

    # -- size / load accounting ----------------------------------------------------

    @property
    def total_cells(self) -> int:
        """Total cells over all levels (a snapshot-size measure)."""
        return sum(lvl.num_cells for lvl in self.levels)

    def load_per_coarse_step(self) -> float:
        """Computational load of advancing the hierarchy one coarse time step.

        With factor-``r`` space-time refinement, level ``l`` is swept
        ``cumulative_ratio(l)`` times per coarse step (MIT subcycling).
        """
        total = 0.0
        for lvl in self.levels:
            total += lvl.load * self.cumulative_ratio(lvl.index)
        return total

    def refined_fraction(self, level: int) -> float:
        """Fraction of the domain covered by ``level``'s patches."""
        if level == 0:
            return 1.0
        dom = self.level_domain(level)
        return self.levels[level].num_cells / dom.num_cells

    # -- structural checks -----------------------------------------------------------

    def is_properly_nested(self) -> bool:
        """True if every patch at level l+1 is covered by level l's patches.

        (Coverage is checked after coarsening the fine patch to level l's
        index space; a buffer of 0 cells is used, matching our regridder.)
        """
        for fine in self.levels[1:]:
            coarse = self.levels[fine.index - 1]
            for p in fine:
                coarse_box = p.box.coarsen(fine.ratio)
                if coarse.covered_fraction_of(coarse_box) < 1.0:
                    return False
        return True

    def patches_in_base_space(self) -> list[tuple[Patch, Box]]:
        """Every patch paired with its footprint coarsened to base index space."""
        out: list[tuple[Patch, Box]] = []
        for lvl in self.levels:
            ratio = self.cumulative_ratio(lvl.index)
            for p in lvl:
                out.append((p, p.box.coarsen(ratio)))
        return out

    # -- adaptation-state signals (consumed by the octant classifier) -----------------

    def adaptation_scatter(self) -> float:
        """Normalized spread of refined-patch centroids in base space, in [0, 1].

        0 means all refinement concentrated at one spot; values near 1 mean
        refinement scattered across the whole domain.  The normalizer is the
        RMS distance of a uniform distribution over the domain.
        """
        pts = []
        weights = []
        for lvl in self.levels[1:]:
            ratio = self.cumulative_ratio(lvl.index)
            for p in lvl:
                c = p.box.centroid
                pts.append([x / ratio for x in c])
                weights.append(p.num_cells / ratio**3)
        if not pts:
            return 0.0
        pts_arr = np.asarray(pts, dtype=float)
        w = np.asarray(weights, dtype=float)
        w = w / w.sum()
        center = (pts_arr * w[:, None]).sum(axis=0)
        rms = float(np.sqrt((((pts_arr - center) ** 2).sum(axis=1) * w).sum()))
        # RMS distance from center for a uniform box of shape s is
        # sqrt(sum(s_i^2)/12); use it to normalize to [0, ~1].
        shape = np.asarray(self.domain.shape, dtype=float)
        uniform_rms = float(np.sqrt((shape**2).sum() / 12.0))
        return min(rms / uniform_rms, 1.0) if uniform_rms > 0 else 0.0

    def refined_mask(self) -> np.ndarray:
        """Boolean base-grid mask of cells covered by any refined level.

        The octant classifier derives its adaptation-pattern signals
        (connected components, footprint change between snapshots) from
        this mask.
        """
        mask = np.zeros(self.domain.shape, dtype=bool)
        for lvl in self.levels[1:]:
            ratio = self.cumulative_ratio(lvl.index)
            for p in lvl:
                base_box = p.box.coarsen(ratio).intersection(self.domain)
                if base_box is not None:
                    mask[base_box.slices(self.domain.lo)] = True
        return mask

    def boundary_cells(self) -> float:
        """Total patch surface area (in level cells) — ghost-communication proxy."""
        return float(sum(p.box.surface_area() for lvl in self.levels for p in lvl))

    def comm_to_comp_ratio(self) -> float:
        """Ghost-surface to compute-load ratio of the *refined* levels.

        This is the comp/comm octant axis: thin or small refined features
        expose much more ghost surface per unit of compute than bulky
        ones.  The base level is excluded — it is identical for every
        hierarchy over the same domain and would only dilute the signal.
        """
        comp = 0.0
        comm = 0.0
        for lvl in self.levels[1:]:
            ratio = self.cumulative_ratio(lvl.index)
            comp += lvl.load * ratio
            comm += sum(p.box.surface_area() for p in lvl) * ratio
        if comp == 0:
            return 0.0
        return comm / comp

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "domain": self.domain.to_dict(),
            "levels": [lvl.to_dict() for lvl in self.levels],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GridHierarchy":
        """Inverse of :meth:`to_dict`."""
        return cls(
            domain=Box.from_dict(d["domain"]),
            levels=[Level.from_dict(l) for l in d["levels"]],
        )

    def copy(self) -> "GridHierarchy":
        """Deep copy (patches are immutable, levels are rebuilt)."""
        return GridHierarchy(
            domain=self.domain,
            levels=[
                Level(index=lvl.index, ratio=lvl.ratio, patches=list(lvl.patches))
                for lvl in self.levels
            ],
        )
