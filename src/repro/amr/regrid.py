"""Regridding: error field → flags → clusters → new grid hierarchy.

The application drivers in :mod:`repro.apps` expose a scalar error field on
the base grid each step; the :class:`Regridder` turns it into a properly
nested hierarchy using nested thresholds (a cell whose error exceeds the
``l``-th threshold is refined to at least level ``l``), dilation by a flag
buffer, and Berger–Rigoutsos clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.amr.clustering import cluster_flags
from repro.amr.grid import Level, Patch
from repro.amr.hierarchy import GridHierarchy

__all__ = ["RegridPolicy", "Regridder"]


@dataclass(frozen=True, slots=True)
class RegridPolicy:
    """Knobs controlling regridding.

    ``thresholds`` has one entry per refined level and must be strictly
    increasing: nested thresholds guarantee nested flag sets, which is the
    first half of the proper-nesting guarantee (the second half is the
    clip-to-parent step in :meth:`Regridder.regrid`).
    """

    ratio: int = 2
    thresholds: tuple[float, ...] = (0.2, 0.45, 0.7)
    min_efficiency: float = 0.7
    min_width: int = 2
    buffer_cells: int = 1
    regrid_interval: int = 4

    def __post_init__(self) -> None:
        if self.ratio < 2:
            raise ValueError(f"refinement ratio must be >= 2, got {self.ratio}")
        if not self.thresholds:
            raise ValueError("at least one refinement threshold is required")
        if any(b <= a for a, b in zip(self.thresholds, self.thresholds[1:])):
            raise ValueError(
                f"thresholds must be strictly increasing, got {self.thresholds}"
            )
        if self.buffer_cells < 0:
            raise ValueError(f"buffer_cells must be >= 0, got {self.buffer_cells}")
        if self.regrid_interval < 1:
            raise ValueError(f"regrid_interval must be >= 1, got {self.regrid_interval}")

    @property
    def max_refined_levels(self) -> int:
        """Number of refined levels above the base."""
        return len(self.thresholds)


class Regridder:
    """Builds grid hierarchies from base-grid error fields."""

    def __init__(self, domain: Box, policy: RegridPolicy) -> None:
        self.domain = domain
        self.policy = policy
        self._next_patch_id = 0

    def regrid(
        self,
        error_field: np.ndarray,
        load_field: np.ndarray | None = None,
    ) -> GridHierarchy:
        """Construct a hierarchy whose refinement tracks ``error_field``.

        Parameters
        ----------
        error_field:
            Float array over the base domain (shape == ``domain.shape``).
        load_field:
            Optional per-base-cell cost multiplier capturing heterogeneous
            physics; a patch's ``load_per_cell`` is the mean of this field
            over the patch footprint.  Defaults to uniform cost 1.

        Returns
        -------
        GridHierarchy
            Properly nested hierarchy with up to
            ``policy.max_refined_levels`` refined levels.
        """
        error_field = np.asarray(error_field, dtype=float)
        if error_field.shape != self.domain.shape:
            raise ValueError(
                f"error field shape {error_field.shape} does not match "
                f"domain shape {self.domain.shape}"
            )
        if load_field is not None:
            load_field = np.asarray(load_field, dtype=float)
            if load_field.shape != self.domain.shape:
                raise ValueError(
                    f"load field shape {load_field.shape} does not match "
                    f"domain shape {self.domain.shape}"
                )

        pol = self.policy
        base = Level(index=0, ratio=1)
        base.add(
            Patch(
                box=self.domain,
                level=0,
                patch_id=self._take_id(),
                load_per_cell=self._mean_load(load_field, self.domain),
            )
        )
        levels = [base]

        parent_footprints = [self.domain]  # level-l patch boxes in base space
        cum_ratio = 1
        for li, tau in enumerate(pol.thresholds, start=1):
            flags = error_field > tau
            if pol.buffer_cells:
                flags = _dilate(flags, pol.buffer_cells)
            boxes = cluster_flags(
                flags,
                min_efficiency=pol.min_efficiency,
                min_width=pol.min_width,
                origin=self.domain.lo,
            )
            # Clip candidates to the parent level so nesting is guaranteed
            # even when clustering padded a box beyond the parent footprint.
            clipped: list[Box] = []
            for b in boxes:
                for pf in parent_footprints:
                    inter = b.intersection(pf)
                    if inter is not None:
                        clipped.append(inter)
            if not clipped:
                break
            cum_ratio *= pol.ratio
            lvl = Level(index=li, ratio=pol.ratio)
            for b in clipped:
                lvl.add(
                    Patch(
                        box=b.refine(cum_ratio),
                        level=li,
                        patch_id=self._take_id(),
                        load_per_cell=self._mean_load(load_field, b),
                    )
                )
            levels.append(lvl)
            parent_footprints = clipped

        return GridHierarchy(domain=self.domain, levels=levels)

    def _take_id(self) -> int:
        pid = self._next_patch_id
        self._next_patch_id += 1
        return pid

    def _mean_load(self, load_field: np.ndarray | None, base_box: Box) -> float:
        if load_field is None:
            return 1.0
        region = load_field[base_box.slices(self.domain.lo)]
        return float(region.mean()) if region.size else 1.0


def _dilate(flags: np.ndarray, cells: int) -> np.ndarray:
    """Binary dilation by a cube of radius ``cells`` using shifted ORs.

    Implemented with numpy slicing (no scipy dependency in the hot path);
    cost is O(cells * ndim * N).
    """
    out = flags.copy()
    for axis in range(flags.ndim):
        acc = out.copy()
        for shift in range(1, cells + 1):
            sl_fwd_dst = [slice(None)] * flags.ndim
            sl_fwd_src = [slice(None)] * flags.ndim
            sl_fwd_dst[axis] = slice(0, flags.shape[axis] - shift)
            sl_fwd_src[axis] = slice(shift, flags.shape[axis])
            acc[tuple(sl_fwd_dst)] |= out[tuple(sl_fwd_src)]
            sl_bwd_dst = [slice(None)] * flags.ndim
            sl_bwd_src = [slice(None)] * flags.ndim
            sl_bwd_dst[axis] = slice(shift, flags.shape[axis])
            sl_bwd_src[axis] = slice(0, flags.shape[axis] - shift)
            acc[tuple(sl_bwd_dst)] |= out[tuple(sl_bwd_src)]
        out = acc
    return out
