"""Hierarchy diffing for the incremental regrid path.

SAMR adaptation is localized: successive regrid snapshots differ in a
handful of patches while the bulk of the hierarchy — and everything
derived from it (composite load map, unit arrays, SFC orderings,
adjacency) — is unchanged.  :func:`diff_hierarchies` compares two
hierarchies structurally and reports the *dirty region*: the base-grid
cells whose composite load could differ.  Consumers (the execution
simulator's :class:`~repro.execsim.reuse.UnitsReuseCache`) recompute only
that region and reuse the rest, bit-identically to a full recompute.

Patches are matched by value — ``(level, box, load_per_cell)`` — not by
``patch_id``, because regridders renumber ids freely.  Matching is
order-sensitive: floating-point accumulation order is part of the
composite-load-map contract, so when the surviving patches of a level
appear in a different relative order than before, the whole level is
conservatively marked dirty rather than risking a reordered sum.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.amr.grid import Patch
from repro.amr.hierarchy import GridHierarchy

__all__ = ["HierarchyDiff", "diff_hierarchies", "patch_signature"]


def patch_signature(patch: Patch) -> tuple:
    """Value identity of a patch for diffing (``patch_id`` excluded)."""
    return (patch.level, patch.box.lo, patch.box.hi, patch.load_per_cell)


@dataclass(slots=True)
class HierarchyDiff:
    """Structural difference between two snapshots' hierarchies.

    ``compatible`` means the incremental path applies: same base domain
    and same refinement ratios on every common level.  ``identical``
    additionally means no patch changed — every derived structure can be
    reused outright.  ``dirty_mask`` (base-grid bool array, present iff
    ``compatible``) marks the cells whose composite load must be
    recomputed; it is all-False iff ``identical``.
    """

    compatible: bool
    identical: bool
    dirty_mask: np.ndarray | None
    #: patches present (by value) in both hierarchies, in order
    unchanged_patches: int
    #: patches added, removed, or conservatively invalidated (reordering)
    changed_patches: int
    #: levels whose entire footprint was invalidated
    dirty_levels: tuple[int, ...] = ()

    @property
    def dirty_fraction(self) -> float:
        """Fraction of base-grid cells in the dirty region (0 when clean)."""
        if self.dirty_mask is None or self.dirty_mask.size == 0:
            return 1.0 if not self.compatible else 0.0
        return float(np.count_nonzero(self.dirty_mask)) / self.dirty_mask.size


def _mark(mask: np.ndarray, hierarchy: GridHierarchy, patch: Patch) -> None:
    """Set the base-space footprint of ``patch`` in ``mask``.

    Inlined coarsen + clip arithmetic (``Box.coarsen().intersection()``
    without the intermediate objects): diffing runs at every regrid
    interval over every changed patch, and box construction dominated
    its profile.
    """
    ratio = hierarchy.cumulative_ratio(patch.level)
    dlo = hierarchy.domain.lo
    dhi = hierarchy.domain.hi
    plo = patch.box.lo
    phi = patch.box.hi
    lo = [0, 0, 0]
    hi = [0, 0, 0]
    for a in range(3):
        lo[a] = max(plo[a] // ratio, dlo[a])
        hi[a] = min(-(-phi[a] // ratio), dhi[a])
        if lo[a] >= hi[a]:
            return
    mask[
        lo[0] - dlo[0]:hi[0] - dlo[0],
        lo[1] - dlo[1]:hi[1] - dlo[1],
        lo[2] - dlo[2]:hi[2] - dlo[2],
    ] = True


def _common_subsequence_ok(
    old_sigs: list[tuple], new_sigs: list[tuple]
) -> bool:
    """True if surviving patches keep their relative order on both sides."""
    common = Counter(old_sigs) & Counter(new_sigs)
    remaining = Counter(common)
    old_filtered = []
    for s in old_sigs:
        if remaining[s] > 0:
            remaining[s] -= 1
            old_filtered.append(s)
    remaining = Counter(common)
    new_filtered = []
    for s in new_sigs:
        if remaining[s] > 0:
            remaining[s] -= 1
            new_filtered.append(s)
    return old_filtered == new_filtered


def diff_hierarchies(
    old: GridHierarchy, new: GridHierarchy
) -> HierarchyDiff:
    """Diff two hierarchies into a :class:`HierarchyDiff`.

    Incompatible pairs (different domains, or a common level whose
    refinement ratio changed — which rescales every contribution at and
    below it) report ``compatible=False`` and no dirty mask; callers must
    fall back to a full recompute.
    """
    if old.domain != new.domain:
        return HierarchyDiff(
            compatible=False, identical=False, dirty_mask=None,
            unchanged_patches=0,
            changed_patches=old.num_patches + new.num_patches,
        )
    n_common = min(old.num_levels, new.num_levels)
    for lvl in range(n_common):
        if old.levels[lvl].ratio != new.levels[lvl].ratio:
            return HierarchyDiff(
                compatible=False, identical=False, dirty_mask=None,
                unchanged_patches=0,
                changed_patches=old.num_patches + new.num_patches,
            )

    mask = np.zeros(new.domain.shape, dtype=bool)
    unchanged = 0
    changed = 0
    dirty_levels: list[int] = []

    # Levels present on only one side are wholly dirty.
    for h in (old, new):
        for lvl in h.levels[n_common:]:
            dirty_levels.append(lvl.index)
            for p in lvl:
                _mark(mask, h, p)
                changed += 1

    for idx in range(n_common):
        old_lvl = old.levels[idx]
        new_lvl = new.levels[idx]
        old_sigs = [patch_signature(p) for p in old_lvl]
        new_sigs = [patch_signature(p) for p in new_lvl]
        if old_sigs == new_sigs:
            unchanged += len(new_sigs)
            continue
        if not _common_subsequence_ok(old_sigs, new_sigs):
            # Surviving patches were reordered: accumulation order — part
            # of the bit-identity contract — would change, so invalidate
            # the whole level.
            dirty_levels.append(idx)
            for p in old_lvl:
                _mark(mask, old, p)
            for p in new_lvl:
                _mark(mask, new, p)
            changed += len(old_sigs) + len(new_sigs)
            continue
        common = Counter(old_sigs) & Counter(new_sigs)
        unchanged += sum(common.values())
        for h, lvl, sigs in ((old, old_lvl, old_sigs), (new, new_lvl, new_sigs)):
            remaining = Counter(common)
            for p, s in zip(lvl, sigs):
                if remaining[s] > 0:
                    remaining[s] -= 1
                else:
                    _mark(mask, h, p)
                    changed += 1

    identical = changed == 0 and old.num_levels == new.num_levels
    return HierarchyDiff(
        compatible=True,
        identical=identical,
        dirty_mask=mask,
        unchanged_patches=unchanged,
        changed_patches=changed,
        dirty_levels=tuple(sorted(set(dirty_levels))),
    )
