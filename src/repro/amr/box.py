"""Integer index-space boxes.

A :class:`Box` is an axis-aligned rectangular region of a 3-D integer
index space, stored half-open: ``lo`` is the first cell, ``hi`` is one past
the last cell in each dimension.  Boxes are the unit of everything in SAMR:
patches are boxes, clustering emits boxes, partitioners split boxes.

Boxes are immutable value objects; all operations return new boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Box"]


def _as_triple(v: Sequence[int], name: str) -> tuple[int, int, int]:
    t = tuple(int(x) for x in v)
    if len(t) != 3:
        raise ValueError(f"{name} must have 3 components, got {v!r}")
    return t  # type: ignore[return-value]


@dataclass(frozen=True, slots=True)
class Box:
    """Half-open 3-D integer box ``[lo, hi)``.

    Raises ``ValueError`` at construction if any extent is non-positive;
    use :meth:`Box.empty` checks via intersection instead of degenerate
    boxes.
    """

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    def __post_init__(self) -> None:
        lo = _as_triple(self.lo, "lo")
        hi = _as_triple(self.hi, "hi")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if any(h <= l for l, h in zip(lo, hi)):
            raise ValueError(f"box has non-positive extent: lo={lo} hi={hi}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_shape(cls, shape: Sequence[int], origin: Sequence[int] = (0, 0, 0)) -> "Box":
        """Box of a given ``shape`` anchored at ``origin``."""
        o = _as_triple(origin, "origin")
        s = _as_triple(shape, "shape")
        return cls(o, tuple(oo + ss for oo, ss in zip(o, s)))

    # -- basic geometry --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        """Extent (number of cells) along each dimension."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    @property
    def num_cells(self) -> int:
        """Total number of cells in the box."""
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def centroid(self) -> tuple[float, float, float]:
        """Geometric center of the box in index space."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    def surface_area(self) -> int:
        """Number of boundary faces — proxy for ghost-cell communication volume."""
        sx, sy, sz = self.shape
        return 2 * (sx * sy + sy * sz + sx * sz)

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if the integer cell ``point`` lies inside the box."""
        p = _as_triple(point, "point")
        return all(l <= x < h for x, l, h in zip(p, self.lo, self.hi))

    def contains_box(self, other: "Box") -> bool:
        """True if ``other`` is entirely inside this box."""
        return all(sl <= ol and oh <= sh
                   for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi))

    # -- set-like operations ---------------------------------------------------

    def intersection(self, other: "Box") -> "Box | None":
        """Overlap of two boxes, or ``None`` if they are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def intersects(self, other: "Box") -> bool:
        """True if the two boxes share at least one cell."""
        return all(max(a, b) < min(c, d)
                   for a, b, c, d in zip(self.lo, other.lo, self.hi, other.hi))

    def bounding_union(self, other: "Box") -> "Box":
        """Smallest box containing both operands (not a true set union)."""
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def subtract(self, other: "Box") -> list["Box"]:
        """Difference ``self \\ other`` as a list of disjoint boxes.

        Standard slab decomposition: peel off up to two slabs per dimension.
        Returns ``[self]`` untouched if the boxes are disjoint.
        """
        inter = self.intersection(other)
        if inter is None:
            return [self]
        pieces: list[Box] = []
        lo = list(self.lo)
        hi = list(self.hi)
        for axis in range(3):
            if lo[axis] < inter.lo[axis]:
                plo, phi = lo.copy(), hi.copy()
                phi[axis] = inter.lo[axis]
                pieces.append(Box(tuple(plo), tuple(phi)))
                lo[axis] = inter.lo[axis]
            if inter.hi[axis] < hi[axis]:
                plo, phi = lo.copy(), hi.copy()
                plo[axis] = inter.hi[axis]
                pieces.append(Box(tuple(plo), tuple(phi)))
                hi[axis] = inter.hi[axis]
        return pieces

    # -- refinement / transformation -------------------------------------------

    def refine(self, ratio: int) -> "Box":
        """Map the box to the next finer index space (multiply by ``ratio``)."""
        if ratio < 1:
            raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
        return Box(tuple(l * ratio for l in self.lo), tuple(h * ratio for h in self.hi))

    def coarsen(self, ratio: int) -> "Box":
        """Map the box to the next coarser index space (floor/ceil divide)."""
        if ratio < 1:
            raise ValueError(f"refinement ratio must be >= 1, got {ratio}")
        lo = tuple(l // ratio for l in self.lo)
        hi = tuple(-(-h // ratio) for h in self.hi)
        return Box(lo, hi)

    def grow(self, cells: int) -> "Box":
        """Expand (or shrink, if negative) the box by ``cells`` on every face."""
        lo = tuple(l - cells for l in self.lo)
        hi = tuple(h + cells for h in self.hi)
        return Box(lo, hi)

    def shift(self, offset: Sequence[int]) -> "Box":
        """Translate the box by an integer ``offset``."""
        o = _as_triple(offset, "offset")
        return Box(tuple(l + d for l, d in zip(self.lo, o)),
                   tuple(h + d for h, d in zip(self.hi, o)))

    def clip_to(self, domain: "Box") -> "Box | None":
        """Intersect with a containing domain (alias with intent)."""
        return self.intersection(domain)

    # -- splitting --------------------------------------------------------------

    def split(self, axis: int, at: int) -> tuple["Box", "Box"]:
        """Cut the box at index ``at`` along ``axis`` into two boxes."""
        if not (self.lo[axis] < at < self.hi[axis]):
            raise ValueError(
                f"split position {at} outside open interval "
                f"({self.lo[axis]}, {self.hi[axis]}) on axis {axis}"
            )
        hi_a = list(self.hi)
        hi_a[axis] = at
        lo_b = list(self.lo)
        lo_b[axis] = at
        return Box(self.lo, tuple(hi_a)), Box(tuple(lo_b), self.hi)

    def halve_longest(self) -> tuple["Box", "Box"] | None:
        """Split the box in half along its longest axis, or ``None`` if 1 cell."""
        shape = self.shape
        axis = int(np.argmax(shape))
        if shape[axis] < 2:
            return None
        return self.split(axis, self.lo[axis] + shape[axis] // 2)

    def blocks(self, block: Sequence[int]) -> Iterator["Box"]:
        """Tile the box with blocks of shape ``block`` (edge blocks clipped).

        Iteration order is z-fastest (C order over block indices), which the
        composite-grid-unit generator relies on for determinism.
        """
        b = _as_triple(block, "block")
        if any(x < 1 for x in b):
            raise ValueError(f"block extents must be >= 1, got {block!r}")
        for i in range(self.lo[0], self.hi[0], b[0]):
            for j in range(self.lo[1], self.hi[1], b[1]):
                for k in range(self.lo[2], self.hi[2], b[2]):
                    yield Box(
                        (i, j, k),
                        (min(i + b[0], self.hi[0]),
                         min(j + b[1], self.hi[1]),
                         min(k + b[2], self.hi[2])),
                    )

    # -- array bridging ----------------------------------------------------------

    def slices(self, origin: Sequence[int] = (0, 0, 0)) -> tuple[slice, slice, slice]:
        """Numpy slicing tuple for this box inside an array anchored at ``origin``."""
        o = _as_triple(origin, "origin")
        return tuple(slice(l - oo, h - oo)
                     for l, h, oo in zip(self.lo, self.hi, o))  # type: ignore[return-value]

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {"lo": list(self.lo), "hi": list(self.hi)}

    @classmethod
    def from_dict(cls, d: dict) -> "Box":
        """Inverse of :meth:`to_dict`."""
        return cls(tuple(d["lo"]), tuple(d["hi"]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(lo={self.lo}, hi={self.hi})"
