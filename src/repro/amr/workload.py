"""Composite workload maps.

Domain-based SAMR partitioners (the ISP family) do not partition patches;
they partition the *composite grid*: the base domain where every base cell
carries the total cost of its whole refinement column — all fine cells that
project onto it, times their time-refinement subcycling factor.  This
module builds that map from a :class:`~repro.amr.hierarchy.GridHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels, obs
from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.kernels.workload import composite_values_vector

__all__ = ["WorkloadMap", "composite_load_map", "update_composite_load_map"]

#: patch count from which the vector backend uses the batched scatter
#: kernel; below it, contiguous slice adds are already optimal and the
#: ragged index arithmetic would only add overhead.
VECTOR_MIN_PATCHES = 32


@dataclass(slots=True)
class WorkloadMap:
    """Per-base-cell computational load of one coarse time step."""

    domain: Box
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != self.domain.shape:
            raise ValueError(
                f"values shape {self.values.shape} does not match "
                f"domain shape {self.domain.shape}"
            )
        if (self.values < 0).any():
            raise ValueError("workload values must be non-negative")

    @property
    def total(self) -> float:
        """Total load over the domain."""
        return float(self.values.sum())

    def box_load(self, box: Box) -> float:
        """Total load inside ``box`` (expressed in base index space)."""
        inter = box.intersection(self.domain)
        if inter is None:
            return 0.0
        return float(self.values[inter.slices(self.domain.lo)].sum())

    def flat_loads(self, order: np.ndarray) -> np.ndarray:
        """Load per base cell in a caller-supplied linearization ``order``.

        ``order`` is an integer array of flattened C-order cell indices
        (e.g. a space-filling-curve permutation); the result aligns with it.
        """
        flat = self.values.reshape(-1)
        return flat[order]


def composite_load_map(hierarchy: GridHierarchy) -> WorkloadMap:
    """Project a hierarchy's load onto the base grid.

    A patch at level ``l`` with cumulative spatial refinement ``R``
    contributes ``load_per_cell * R`` per *fine* cell per coarse step
    (``R`` time subcycles), i.e. up to ``load_per_cell * R^4`` per fully
    covered base cell in 3-D.  Partial coverage at unaligned patch edges is
    handled exactly with per-axis overlap counts.

    The accumulation exists twice: the per-patch scalar loop below and
    the patch-batched kernel in :mod:`repro.kernels.workload`, selected
    by the kernel backend and proven bit-identical by the differential
    suite.  The vector backend cuts over to the batched kernel only from
    :data:`VECTOR_MIN_PATCHES` patches up — below that, slice adds over
    a few large blocks are already optimal.
    """
    domain = hierarchy.domain
    backend = kernels.active_backend()
    obs.counter("kernels.calls", kernel="workload", backend=backend).inc()
    if backend == "vector" and hierarchy.num_patches >= VECTOR_MIN_PATCHES:
        return WorkloadMap(
            domain=domain, values=composite_values_vector(hierarchy)
        )
    values = np.zeros(domain.shape, dtype=float)

    for lvl in hierarchy.levels:
        ratio = hierarchy.cumulative_ratio(lvl.index)
        subcycles = ratio  # factor-r space-*time* refinement
        for patch in lvl:
            weight = patch.load_per_cell * subcycles
            if ratio == 1:
                sl = patch.box.slices(domain.lo)
                values[sl] += weight
                continue
            coarse = patch.box.coarsen(ratio)
            counts = [
                _axis_overlap(patch.box.lo[a], patch.box.hi[a], coarse.lo[a],
                              coarse.hi[a], ratio)
                for a in range(3)
            ]
            block = (
                counts[0][:, None, None]
                * counts[1][None, :, None]
                * counts[2][None, None, :]
            ).astype(float)
            clipped = coarse.intersection(domain)
            if clipped is None:
                continue
            # Slice the block to the clipped region relative to `coarse`.
            bsl = clipped.slices(coarse.lo)
            values[clipped.slices(domain.lo)] += weight * block[bsl]
    return WorkloadMap(domain=domain, values=values)


def update_composite_load_map(
    old: WorkloadMap,
    hierarchy: GridHierarchy,
    dirty_mask: np.ndarray,
) -> WorkloadMap:
    """Incrementally update ``old`` to reflect ``hierarchy``.

    ``dirty_mask`` (from :func:`repro.amr.diff.diff_hierarchies`) marks
    the base cells whose composite load may have changed; those cells are
    zeroed and re-accumulated from every patch of the *new* hierarchy
    whose footprint touches them, in the same (level, patch) order as a
    full recompute.  Clean cells keep their previous values — by the
    diff's construction every patch covering them is unchanged and in
    unchanged relative order, so the result is **bit-identical** to
    ``composite_load_map(hierarchy)`` (proven by the incremental
    differential suite).
    """
    domain = hierarchy.domain
    if old.domain != domain:
        raise ValueError("incremental update requires an unchanged domain")
    if dirty_mask.shape != old.values.shape:
        raise ValueError(
            f"dirty_mask shape {dirty_mask.shape} does not match "
            f"map shape {old.values.shape}"
        )
    obs.counter("kernels.calls", kernel="workload",
                backend="incremental").inc()
    values = old.values.copy()
    values[dirty_mask] = 0.0

    for lvl in hierarchy.levels:
        ratio = hierarchy.cumulative_ratio(lvl.index)
        subcycles = ratio
        for patch in lvl:
            weight = patch.load_per_cell * subcycles
            if ratio == 1:
                sl = patch.box.slices(domain.lo)
                local = dirty_mask[sl]
                if local.any():
                    values[sl][local] += weight
                continue
            coarse = patch.box.coarsen(ratio)
            clipped = coarse.intersection(domain)
            if clipped is None:
                continue
            sl = clipped.slices(domain.lo)
            local = dirty_mask[sl]
            if not local.any():
                continue
            counts = [
                _axis_overlap(patch.box.lo[a], patch.box.hi[a], coarse.lo[a],
                              coarse.hi[a], ratio)
                for a in range(3)
            ]
            block = (
                counts[0][:, None, None]
                * counts[1][None, :, None]
                * counts[2][None, None, :]
            ).astype(float)
            bsl = clipped.slices(coarse.lo)
            values[sl][local] += (weight * block[bsl])[local]
    return WorkloadMap(domain=domain, values=values)


def _axis_overlap(flo: int, fhi: int, clo: int, chi: int, ratio: int) -> np.ndarray:
    """Fine-cell count of ``[flo, fhi)`` inside each coarse cell of ``[clo, chi)``."""
    n = chi - clo
    idx = np.arange(clo, chi)
    starts = np.maximum(idx * ratio, flo)
    ends = np.minimum((idx + 1) * ratio, fhi)
    return np.maximum(ends - starts, 0).astype(np.int64).reshape(n)
