"""Execsim benchmarks: the comm-cost kernel pair and cross-interval reuse.

``python -m repro execsim-bench`` produces the ``BENCH_execsim.json``
document gated by ``python -m repro benchdiff`` in CI.  Two halves:

- **cost kernel** — scalar reference vs vectorized
  :func:`~repro.execsim.costmodel.comm_cost_terms` on seeded synthetic
  adjacency problems up to ~1e5 pairs (the regime a production-sized
  unit lattice reaches).  Wall leaves follow the ``wall_*_s`` /
  ``speedup`` naming the benchdiff gate ignores; the ``match`` booleans
  and output digests are gated exactly.
- **regrid reuse** — :class:`~repro.execsim.reuse.UnitsReuseCache`
  replayed over the reduced RM3D trace.  The hit rate is a
  deterministic property of the trace (not a timing), so it is gated
  exactly; the incremental-vs-full wall comparison is informational.

Synthetic inputs derive from ``np.random.default_rng(seed).random()``
only — the one generator method with a version-stable stream — so the
committed digests stay reproducible across machines.
"""

from __future__ import annotations

import hashlib
import math
import time

import numpy as np

from repro import kernels

__all__ = ["run_execsim_bench", "render_execsim_bench"]

#: adjacency-pair counts for the cost-kernel half (largest drives the gate)
DEFAULT_PAIR_COUNTS = (1_000, 10_000, 100_000)

#: processors the synthetic assignments scatter over
DEFAULT_PROCS = 64


def _digest(values: np.ndarray) -> str:
    payload = ",".join(str(v) for v in np.asarray(values).reshape(-1).tolist())
    return hashlib.sha256(payload.encode()).hexdigest()


def _best_of(fn, repeats: int):
    best = math.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _localized_trace():
    """A scripted localized-adaptation trace: many static patches, one
    drifting front.

    Each transition dirties only the cells the moving fine patch enters
    or leaves (a few percent of the base grid) while the bulk of the
    refinement — a static tiled region of 64 patches — is unchanged: the
    regime the incremental regrid path is built for.
    """
    from repro.amr.box import Box
    from repro.amr.grid import Level, Patch
    from repro.amr.hierarchy import GridHierarchy
    from repro.amr.trace import AdaptationTrace, Snapshot

    domain = Box((0, 0, 0), (64, 32, 32))
    trace = AdaptationTrace(meta={"app": "localized-front"})
    for k in range(30):
        base = Level(index=0, ratio=1)
        base.add(Patch(box=domain, level=0, patch_id=0))
        fine = Level(index=1, ratio=2)
        pid = 0
        # static tiles fill the lower-z half of the fine index space
        for x in range(0, 128, 16):
            for y in range(0, 64, 16):
                for z in range(0, 32, 16):
                    fine.add(Patch(box=Box((x, y, z), (x + 16, y + 16, z + 16)),
                                   level=1, patch_id=pid, load_per_cell=2.0))
                    pid += 1
        # the moving front lives in the upper-z half, clear of the tiles
        x0 = 2 * (4 + k)
        fine.add(Patch(box=Box((x0, 8, 40), (x0 + 16, 40, 56)),
                       level=1, patch_id=pid, load_per_cell=3.0))
        trace.append(Snapshot(
            step=4 * k,
            hierarchy=GridHierarchy(domain=domain, levels=[base, fine]),
        ))
    return trace


def _cost_problem(rng: np.random.Generator, n_pairs: int, procs: int):
    """A synthetic adjacency problem with ~``n_pairs`` cut candidates."""
    n_units = max(n_pairs // 3, 4)
    shapes = (rng.random((n_units, 3)) * 5).astype(int) + 1
    loads = rng.random(n_units) * 40.0
    assignment = (rng.random(n_units) * procs).astype(int)
    i = (rng.random(n_pairs) * n_units).astype(int)
    j = (rng.random(n_pairs) * n_units).astype(int)
    axis = (rng.random(n_pairs) * 3).astype(int)
    return i, j, axis, assignment, shapes, loads


def run_execsim_bench(
    *,
    pair_counts: tuple[int, ...] = DEFAULT_PAIR_COUNTS,
    procs: int = DEFAULT_PROCS,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Produce the ``BENCH_execsim.json`` document."""
    from repro.execsim.costmodel import CostModel, comm_cost_terms
    from repro.execsim.reuse import UnitsReuseCache
    from repro.experiments.common import rm3d_small_trace
    from repro.partitioners.units import build_units

    cost = CostModel()
    rng = np.random.default_rng(seed)
    doc: dict = {
        "meta": {
            "seed": seed,
            "procs": procs,
            "repeats": repeats,
            "pair_counts": list(pair_counts),
        },
        "cost_kernel": {},
    }

    for n_pairs in pair_counts:
        case = _cost_problem(rng, n_pairs, procs)

        def run():
            return comm_cost_terms(
                *case, procs, cost.ghost_width, cost.bytes_per_comm_unit
            )

        with kernels.use_backend("scalar"):
            wall_s, ref = _best_of(run, repeats)
        with kernels.use_backend("vector"):
            wall_v, out = _best_of(run, repeats)
        match = (
            bool(np.array_equal(ref[0], out[0]))
            and bool(np.array_equal(ref[1], out[1]))
            and ref[2] == out[2]
        )
        doc["cost_kernel"][f"pairs{n_pairs}"] = {
            "wall_scalar_s": wall_s,
            "wall_vector_s": wall_v,
            "speedup": wall_s / wall_v if wall_v > 0 else float("inf"),
            "match": match,
            "comm_bytes_digest": _digest(out[0]),
            "neighbor_count_digest": _digest(out[1]),
            "ghost_work": out[2],
        }

    # -- regrid reuse -----------------------------------------------------------
    # RM3D retunes every patch's load_per_cell each interval (its
    # heterogeneous load field), so transitions there exercise the
    # high-dirty geometry-reuse path; the synthetic localized trace is
    # the favorable regime — a drifting front touching a few percent of
    # the base grid per interval.
    def _replay(trace):
        cache = UnitsReuseCache()
        t0 = time.perf_counter()
        units = None
        for snap in trace:
            units = cache.units_for(snap.hierarchy, granularity=4)
        wall_incremental = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = None
        for snap in trace:
            full = build_units(snap.hierarchy, granularity=4)
        wall_full = time.perf_counter() - t0
        return cache, {
            "snapshots": len(trace),
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "wall_incremental_s": wall_incremental,
            "wall_full_s": wall_full,
            "final_units_match": bool(
                np.array_equal(units.loads, full.loads)
            ),
            "final_loads_digest": _digest(units.loads),
        }

    cache, rm3d_entry = _replay(rm3d_small_trace())
    _, localized_entry = _replay(_localized_trace())
    doc["reuse"] = {"rm3d": rm3d_entry, "localized": localized_entry}

    largest = f"pairs{max(pair_counts)}"
    doc["gate"] = {
        "largest_pairs": max(pair_counts),
        "cost_speedup_at_largest": doc["cost_kernel"][largest]["speedup"],
        "all_match": all(
            entry["match"] for entry in doc["cost_kernel"].values()
        ) and all(
            entry["final_units_match"] for entry in doc["reuse"].values()
        ),
        "reuse_hit_rate": cache.hit_rate,
    }
    return doc


def render_execsim_bench(doc: dict) -> str:
    """Human-readable table of the bench document."""
    lines = [
        "execsim benchmark "
        f"(seed={doc['meta']['seed']}, procs={doc['meta']['procs']}, "
        f"best of {doc['meta']['repeats']})",
        f"{'case':<14} {'scalar':>10} {'vector':>10} {'speedup':>8}  match",
    ]
    for case, entry in doc["cost_kernel"].items():
        lines.append(
            f"{case:<14} "
            f"{entry['wall_scalar_s'] * 1e3:>8.2f}ms "
            f"{entry['wall_vector_s'] * 1e3:>8.2f}ms "
            f"{entry['speedup']:>7.1f}x  "
            f"{'ok' if entry['match'] else 'MISMATCH'}"
        )
    for name, r in doc["reuse"].items():
        lines.append(
            f"reuse[{name}]: {r['hits']}/{r['snapshots']} intervals served "
            f"from cache (hit rate {r['hit_rate']:.3f}), incremental "
            f"{r['wall_incremental_s'] * 1e3:.1f}ms vs full "
            f"{r['wall_full_s'] * 1e3:.1f}ms"
        )
    gate = doc["gate"]
    lines.append(
        f"gate: cost kernel {gate['cost_speedup_at_largest']:.1f}x at "
        f"{gate['largest_pairs']} pairs; reuse hit rate "
        f"{gate['reuse_hit_rate']:.3f}; all_match={gate['all_match']}"
    )
    return "\n".join(lines)
