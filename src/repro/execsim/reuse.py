"""Cross-interval reuse of regrid-derived structures.

The execution simulator rebuilt the composite workload map, unit arrays,
SFC ordering, and adjacency structures from scratch at every regrid
boundary, even though SAMR adaptation is localized — successive
hierarchies differ in a handful of patches.  :class:`UnitsReuseCache`
diffs each snapshot against the previous one
(:func:`repro.amr.diff.diff_hierarchies`) and:

- **identical** hierarchy → the cached workload map and unit arrays are
  returned outright;
- **compatible, localized** change (dirty fraction at most
  :data:`REUSE_DIRTY_THRESHOLD`) → the workload map is updated only in
  the dirty region (:func:`repro.amr.workload.update_composite_load_map`)
  and the unit geometry (lattice coordinates, curve order/positions) is
  shared from the cached units, re-block-summing only the loads;
- **compatible, widespread** change (e.g. heterogeneous physics retuning
  every patch's ``load_per_cell``, as the RM3D load field does) → the
  masked re-accumulation would touch most of the grid anyway, so the map
  is recomputed through the full vectorized path, but the unit geometry
  is still reused;
- **incompatible** change (domain or refinement-ratio change) → full
  recompute, exactly as without the cache.

Every path is bit-identical to the full recompute — proven by the
incremental differential suite — so enabling the cache cannot change a
single byte of a :class:`~repro.execsim.simulator.RunResult`.

Observability:
``execsim.reuse_hits{kind=identical|incremental|geometry|workload}`` and
``execsim.reuse_misses{reason=first|incompatible}`` counters, plus an
``execsim.dirty_fraction_pct`` histogram of how much of the base grid
each compatible transition invalidated.
"""

from __future__ import annotations

from repro import obs
from repro.amr.diff import diff_hierarchies
from repro.amr.hierarchy import GridHierarchy
from repro.amr.workload import (
    WorkloadMap,
    composite_load_map,
    update_composite_load_map,
)
from repro.partitioners.units import (
    CompositeUnits,
    rebuild_units,
    units_from_map,
)

__all__ = ["REUSE_DIRTY_THRESHOLD", "UnitsReuseCache"]

#: dirty fraction above which the incremental masked re-accumulation is
#: abandoned for the full vectorized map recompute (geometry still
#: reused).  The masked path walks patches in Python and only pays off
#: when most cells are clean.
REUSE_DIRTY_THRESHOLD = 0.5


class UnitsReuseCache:
    """Reuses workload maps and unit arrays across regrid intervals.

    One instance serves one simulated run (the simulator constructs a
    fresh cache per :meth:`~repro.execsim.simulator.ExecutionSimulator.run`
    call, so results never depend on what ran before).
    """

    def __init__(self) -> None:
        self._hierarchy: GridHierarchy | None = None
        self._wmap: WorkloadMap | None = None
        #: units built against the *current* workload map
        self._units: dict[tuple[int, str], CompositeUnits] = {}
        #: units built against a superseded map — geometry donors only
        self._stale_units: dict[tuple[int, str], CompositeUnits] = {}
        self.hits = 0
        self.misses = 0
        self.intervals = 0

    # -- bookkeeping -------------------------------------------------------------

    def _hit(self, kind: str) -> None:
        self.hits += 1
        obs.counter("execsim.reuse_hits", kind=kind).inc()

    def _miss(self, reason: str) -> None:
        self.misses += 1
        obs.counter("execsim.reuse_misses", reason=reason).inc()

    @property
    def hit_rate(self) -> float:
        """Fraction of interval requests served from the cache."""
        if self.intervals == 0:
            return 0.0
        return self.hits / self.intervals

    # -- the lookup --------------------------------------------------------------

    def units_for(
        self,
        hierarchy: GridHierarchy,
        *,
        granularity: int,
        curve: str = "hilbert",
    ) -> CompositeUnits:
        """Units for ``hierarchy``, reusing prior work where possible."""
        self.intervals += 1
        key = (int(granularity), curve)

        if self._hierarchy is None:
            self._full_rebuild(hierarchy, "first")
        elif hierarchy is self._hierarchy:
            self._hit("identical")
        else:
            diff = diff_hierarchies(self._hierarchy, hierarchy)
            if not diff.compatible:
                self._full_rebuild(hierarchy, "incompatible")
            elif diff.identical:
                self._hierarchy = hierarchy
                self._hit("identical")
            else:
                frac = diff.dirty_fraction
                obs.histogram("execsim.dirty_fraction_pct").observe(
                    100.0 * frac
                )
                if frac <= REUSE_DIRTY_THRESHOLD:
                    self._wmap = update_composite_load_map(
                        self._wmap, hierarchy, diff.dirty_mask
                    )
                    kind = "incremental"
                else:
                    # Mostly dirty: the full vectorized recompute is
                    # cheaper than a masked Python re-accumulation, and
                    # trivially bit-identical to it.  Geometry (curve
                    # order, lattice coords, adjacency) is still reused.
                    self._wmap = composite_load_map(hierarchy)
                    kind = "geometry"
                self._hierarchy = hierarchy
                self._stale_units = self._units
                self._units = {}
                self._hit(kind)

        units = self._units.get(key)
        if units is None:
            donor = self._stale_units.get(key)
            if donor is not None:
                units = rebuild_units(donor, self._wmap)
            else:
                if self._units or self._stale_units:
                    # New (granularity, curve) against a reused map.
                    obs.counter("execsim.reuse_hits", kind="workload").inc()
                units = units_from_map(
                    self._wmap, granularity=key[0], curve=key[1]
                )
            self._units[key] = units
        return units

    def _full_rebuild(self, hierarchy: GridHierarchy, reason: str) -> None:
        self._wmap = composite_load_map(hierarchy)
        self._hierarchy = hierarchy
        self._units = {}
        self._stale_units = {}
        self._miss(reason)
