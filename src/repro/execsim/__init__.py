"""Discrete execution simulation of partitioned SAMR runs.

Replays an adaptation trace against a simulated cluster under a
partitioning strategy and integrates the cost of every coarse time step —
computation (per-processor load over effective speed), ghost-cell
communication (cut-surface volume over link bandwidth plus per-neighbor
latency), and per-regrid costs (partitioning time, data migration,
fragmentation overhead).  This is the instrument that regenerates the
paper's Table 4 and Table 5.

Replay is fault tolerant: clusters carrying a failure schedule run the
detect → rollback → redistribute → resume loop natively (see
:mod:`repro.resilience`).
"""

from repro.execsim.costmodel import (
    CostModel,
    comm_cost_terms,
    per_step_comm_times,
)
from repro.execsim.reuse import UnitsReuseCache
from repro.execsim.selector import (
    PartitionerSelector,
    StaticSelector,
    SelectorDecision,
)
from repro.execsim.simulator import (
    ExecutionSimulator,
    RunResult,
    StepRecord,
)

__all__ = [
    "CostModel",
    "PartitionerSelector",
    "StaticSelector",
    "SelectorDecision",
    "ExecutionSimulator",
    "RunResult",
    "StepRecord",
    "UnitsReuseCache",
    "comm_cost_terms",
    "per_step_comm_times",
]
