"""Partitioner selection strategies for the execution simulator.

The simulator asks its selector for a decision at every regrid step; a
:class:`StaticSelector` always answers the same (the paper's static
baselines), while :class:`repro.core.meta_partitioner.MetaPartitioner`
implements the adaptive policy-driven choice.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.amr.trace import Snapshot
from repro.partitioners.base import Partitioner

__all__ = ["SelectorDecision", "PartitionerSelector", "StaticSelector"]


@dataclass(frozen=True, slots=True)
class SelectorDecision:
    """What to partition with at one regrid step."""

    partitioner: Partitioner
    granularity: int = 2
    label: str = ""
    octant: str | None = None

    def __post_init__(self) -> None:
        if self.granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {self.granularity}")


class PartitionerSelector(abc.ABC):
    """Chooses the partitioner (and its configuration) per regrid step."""

    @abc.abstractmethod
    def decide(
        self, snapshot: Snapshot, previous: Snapshot | None
    ) -> SelectorDecision:
        """Decision for the hierarchy captured in ``snapshot``."""


class StaticSelector(PartitionerSelector):
    """Always uses the same partitioner and granularity."""

    def __init__(self, partitioner: Partitioner, granularity: int = 2) -> None:
        self.partitioner = partitioner
        self.granularity = granularity

    def decide(
        self, snapshot: Snapshot, previous: Snapshot | None
    ) -> SelectorDecision:
        return SelectorDecision(
            partitioner=self.partitioner,
            granularity=self.granularity,
            label=self.partitioner.name,
        )
