"""Cost model of a partitioned SAMR step on a simulated machine.

Besides the :class:`CostModel` constants, this module owns the
per-regrid-interval *communication cost kernel*: boundary-crossing ghost
volume, per-processor neighbor-set sizes, and the redundant-update
(AMR-efficiency) term, all derived from the unit adjacency arrays and the
owner assignment.  The computation exists twice — the pure-Python scalar
loop below (the reference semantics, frozen verbatim as the differential
oracle in ``tests/reference/ref_costmodel.py``) and the numpy
scatter/bincount kernel in :mod:`repro.kernels.costmodel` — selected by
the process-wide kernel backend (``REPRO_KERNELS=vector|scalar``) and
proven bit-identical by the differential suite in
``tests/test_execsim_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels, obs

__all__ = ["CostModel", "comm_cost_terms", "per_step_comm_times"]

#: face-area axis pairs: the two extents orthogonal to each adjacency axis
_OTHER_AXES = ((1, 2), (0, 2), (0, 1))


@dataclass(frozen=True, slots=True)
class CostModel:
    """Constants translating partition geometry into seconds.

    All volumes are in composite-load units (one unit = one cell update of
    one solver sweep); the load-density weighting inside the communication
    metric already accounts for refinement depth.
    """

    #: bytes exchanged per unit of cut-surface communication volume
    bytes_per_comm_unit: float = 10.0
    #: ghost layers exchanged per solver sweep
    ghost_width: float = 2.0
    #: per-neighbor message latency charged per coarse step (seconds)
    #: (subsumes the per-sweep small messages of subcycled levels)
    latency_per_neighbor: float = 1.2e-3
    #: bytes moved per unit of migrated load at a repartition
    bytes_per_migrated_load: float = 4.0
    #: seconds of bookkeeping per ownership fragment at a repartition
    seconds_per_fragment: float = 2.0e-4
    #: seconds per patch reshuffled by a full-redistribution (patch-based)
    #: partitioner at each regrid
    seconds_per_patch_shuffle: float = 1.0e-3
    #: intra-hierarchy redundant updates as a fraction of useful work
    #: (clustering padding + patch-boundary ghosts; AMR-efficiency term)
    intra_ghost_factor: float = 0.0105
    #: fraction of ghost communication hidden under computation.  0 models
    #: fully synchronous exchange; the paper's "latency-tolerant
    #: communication" mechanism (a Section 3.5 policy, used by the RM3D
    #: kernel on the workstation cluster) overlaps most of it.
    comm_overlap: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.comm_overlap <= 1.0):
            raise ValueError(
                f"comm_overlap must be in [0, 1], got {self.comm_overlap}"
            )
        for name in (
            "bytes_per_comm_unit",
            "ghost_width",
            "latency_per_neighbor",
            "bytes_per_migrated_load",
            "seconds_per_fragment",
            "seconds_per_patch_shuffle",
            "intra_ghost_factor",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


def comm_cost_terms_scalar(
    i: np.ndarray,
    j: np.ndarray,
    axis: np.ndarray,
    assignment: np.ndarray,
    shapes: np.ndarray,
    loads: np.ndarray,
    num_procs: int,
    ghost_width: float,
    bytes_per_comm_unit: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Scalar reference: per-proc comm bytes, neighbor counts, ghost work.

    For every cut face (adjacent units with different owners) the
    exchanged volume is the face area scaled by the mean load density of
    the two units and the ghost width; the bytes are charged to *both*
    endpoint processors (send + receive).  ``neighbor_count[p]`` is the
    number of distinct processors ``p`` shares at least one cut face
    with.  ``ghost_work`` is the unweighted geometric redundant-update
    volume (cut face area times ghost width).

    Accumulation order is part of the contract the vector kernel must
    reproduce bit-for-bit: all owner-``i`` byte contributions are added
    in pair order, then all owner-``j`` contributions, and ``ghost_work``
    is a sequential sum over cut pairs in pair order.
    """
    comm_bytes = np.zeros(num_procs)
    neighbor_count = np.zeros(num_procs)
    n = int(len(i))
    cut_bytes: list[float] = []
    cut_oi: list[int] = []
    cut_oj: list[int] = []
    face_sum = 0.0
    pairs: set[tuple[int, int]] = set()
    for k in range(n):
        ui = int(i[k])
        uj = int(j[k])
        oi = int(assignment[ui])
        oj = int(assignment[uj])
        if oi == oj:
            continue
        o1, o2 = _OTHER_AXES[int(axis[k])]
        a = min(int(shapes[ui, o1]), int(shapes[uj, o1]))
        b = min(int(shapes[ui, o2]), int(shapes[uj, o2]))
        face = float(a * b)
        cells_i = float(
            int(shapes[ui, 0]) * int(shapes[ui, 1]) * int(shapes[ui, 2])
        )
        cells_j = float(
            int(shapes[uj, 0]) * int(shapes[uj, 1]) * int(shapes[uj, 2])
        )
        di = float(loads[ui]) / max(cells_i, 1.0)
        dj = float(loads[uj]) / max(cells_j, 1.0)
        vol = face * 0.5 * (di + dj) * ghost_width
        cut_bytes.append(vol * bytes_per_comm_unit)
        cut_oi.append(oi)
        cut_oj.append(oj)
        face_sum += face
        pairs.add((min(oi, oj), max(oi, oj)))
    for k, b in enumerate(cut_bytes):
        comm_bytes[cut_oi[k]] += b
    for k, b in enumerate(cut_bytes):
        comm_bytes[cut_oj[k]] += b
    for p, q in pairs:
        neighbor_count[p] += 1.0
        neighbor_count[q] += 1.0
    ghost_work = face_sum * ghost_width if cut_bytes else 0.0
    return comm_bytes, neighbor_count, ghost_work


def comm_cost_terms(
    i: np.ndarray,
    j: np.ndarray,
    axis: np.ndarray,
    assignment: np.ndarray,
    shapes: np.ndarray,
    loads: np.ndarray,
    num_procs: int,
    ghost_width: float,
    bytes_per_comm_unit: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Backend-dispatched communication cost terms.

    Returns ``(comm_bytes, neighbor_count, ghost_work)`` — see
    :func:`comm_cost_terms_scalar` for the semantics both backends
    reproduce bit-for-bit.
    """
    backend = kernels.active_backend()
    obs.counter("kernels.calls", kernel="costmodel", backend=backend).inc()
    if backend == "vector":
        from repro.kernels.costmodel import comm_cost_terms_vector

        return comm_cost_terms_vector(
            i, j, axis, assignment, shapes, loads, num_procs,
            ghost_width, bytes_per_comm_unit,
        )
    return comm_cost_terms_scalar(
        i, j, axis, assignment, shapes, loads, num_procs,
        ghost_width, bytes_per_comm_unit,
    )


def per_step_comm_times(
    partition, cost: CostModel, bandwidth: float
) -> tuple[np.ndarray, float]:
    """Per-processor ghost-communication seconds for one coarse step.

    Returns ``(comm_per_step, ghost_work)`` where ``ghost_work`` is the
    partitioner-dependent redundant-update volume (AMR-efficiency
    accounting) — callers add the hierarchy-intrinsic term themselves.
    The communication model: cut-face ghost volume (load-density weighted)
    over the link bandwidth, plus per-neighbor message latency scaled by
    the partitioner's message-aggregation factor.
    """
    num_procs = partition.num_procs
    units = partition.units
    i, j, axis = units.adjacency_arrays()
    comm_bytes, neighbor_count, ghost_work = comm_cost_terms(
        i,
        j,
        axis,
        partition.assignment,
        units.unit_shapes(),
        units.loads,
        num_procs,
        cost.ghost_width,
        cost.bytes_per_comm_unit,
    )
    msg_factor = float(partition.params.get("messages_per_neighbor", 3.0))
    comm_per_step = (
        comm_bytes / bandwidth
        + cost.latency_per_neighbor * neighbor_count * msg_factor
    )
    return comm_per_step, ghost_work
