"""Cost model of a partitioned SAMR step on a simulated machine."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Constants translating partition geometry into seconds.

    All volumes are in composite-load units (one unit = one cell update of
    one solver sweep); the load-density weighting inside the communication
    metric already accounts for refinement depth.
    """

    #: bytes exchanged per unit of cut-surface communication volume
    bytes_per_comm_unit: float = 10.0
    #: ghost layers exchanged per solver sweep
    ghost_width: float = 2.0
    #: per-neighbor message latency charged per coarse step (seconds)
    #: (subsumes the per-sweep small messages of subcycled levels)
    latency_per_neighbor: float = 1.2e-3
    #: bytes moved per unit of migrated load at a repartition
    bytes_per_migrated_load: float = 4.0
    #: seconds of bookkeeping per ownership fragment at a repartition
    seconds_per_fragment: float = 2.0e-4
    #: seconds per patch reshuffled by a full-redistribution (patch-based)
    #: partitioner at each regrid
    seconds_per_patch_shuffle: float = 1.0e-3
    #: intra-hierarchy redundant updates as a fraction of useful work
    #: (clustering padding + patch-boundary ghosts; AMR-efficiency term)
    intra_ghost_factor: float = 0.0105
    #: fraction of ghost communication hidden under computation.  0 models
    #: fully synchronous exchange; the paper's "latency-tolerant
    #: communication" mechanism (a Section 3.5 policy, used by the RM3D
    #: kernel on the workstation cluster) overlaps most of it.
    comm_overlap: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.comm_overlap <= 1.0):
            raise ValueError(
                f"comm_overlap must be in [0, 1], got {self.comm_overlap}"
            )
        for name in (
            "bytes_per_comm_unit",
            "ghost_width",
            "latency_per_neighbor",
            "bytes_per_migrated_load",
            "seconds_per_fragment",
            "seconds_per_patch_shuffle",
            "intra_ghost_factor",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
