"""The SAMR execution simulator.

Trace replay is fault tolerant: whenever the cluster carries a failure
schedule, the simulator runs the Cactus-Worm loop natively — a
heartbeat/lease :class:`~repro.resilience.FailureDetector` declares
failures with configurable latency, coordinated checkpoints are taken at
every regrid boundary, and a detected failure triggers rollback to the
last checkpoint, a degraded-mode repartition over the surviving
processors (through the system-sensitive capacity path when capacities
are configured), and resumption.  Committed compute/comm time covers only
work that survived; everything lost to failures (rolled-back attempts,
restores, repartitions, stalls) is accounted as recovery time.

Gray failures get a *proportional* response instead of the full rollback:

- a node inside a :class:`~repro.gridsys.failures.DegradedWindow` keeps
  its work but the partition is re-weighted through the capacity-weighted
  sequence split, shrinking its share by the detector-perceived factor —
  degraded nodes are down-weighted, never evacuated;
- with ``eviction_hysteresis_polls > 0`` a suspect node is not evacuated
  until its outage also outlasts the hysteresis, so flapping nodes stall
  the interval briefly (counted under ``resilience.flap_suppressed``)
  instead of triggering a rollback per flap;
- with ``FaultTolerance.checkpoint_dir`` set, checkpoints are persisted
  through the crash-consistent
  :class:`~repro.resilience.DurableCheckpointStore`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.amr.trace import AdaptationTrace
from repro.config import SimulatorOptions
from repro.obs.timeline import StepSample
from repro.execsim.costmodel import CostModel, per_step_comm_times
from repro.execsim.reuse import UnitsReuseCache
from repro.execsim.selector import PartitionerSelector, SelectorDecision
from repro.gridsys.cluster import Cluster
from repro.partitioners.base import Partition
from repro.partitioners.metrics import PACMetrics, evaluate_partition
from repro.partitioners.units import build_units
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.detector import FailureDetector
from repro.resilience.durable import DurableCheckpointStore
from repro.resilience.recovery import FaultTolerance, RecoveryRecord
from repro.util.stats import max_load_imbalance_pct

#: sentinel distinguishing "kwarg not passed" from an explicit ``None``
#: on the deprecated ExecutionSimulator keyword shims
_DEPRECATED: object = object()

__all__ = [
    "StepRecord",
    "RunResult",
    "ExecutionSimulator",
    "per_step_comm_times",
]


@dataclass(frozen=True, slots=True)
class StepRecord:
    """Accounting for one regrid interval (one snapshot)."""

    step: int
    label: str
    octant: str | None
    coarse_steps: int
    compute_time: float
    comm_time: float
    regrid_time: float
    imbalance_pct: float
    metrics: PACMetrics
    #: coordinated checkpoint seconds charged at the interval boundary
    checkpoint_time: float = 0.0
    #: rollback + restore + repartition + stall seconds within the interval
    recovery_time: float = 0.0
    #: detect → rollback → resume cycles within the interval
    recoveries: int = 0
    #: processors owning work in the interval's committed partition
    #: (populated by fault-tolerant replay; empty otherwise)
    owners: tuple[int, ...] = ()
    #: processors the detector considered live when the interval committed
    #: (populated by fault-tolerant replay; empty otherwise)
    live_procs: tuple[int, ...] = ()


@dataclass(slots=True)
class RunResult:
    """Aggregate result of one simulated run."""

    records: list[StepRecord] = field(default_factory=list)
    useful_work: float = 0.0
    ghost_work: float = 0.0
    proc_work: np.ndarray | None = None
    recovery_events: list[RecoveryRecord] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        """End-to-end execution time in simulated seconds."""
        return float(
            sum(
                r.compute_time
                + r.comm_time
                + r.regrid_time
                + r.checkpoint_time
                + r.recovery_time
                for r in self.records
            )
        )

    @property
    def mean_imbalance_pct(self) -> float:
        """Time-weighted mean of per-interval max load imbalance.

        This is the "Max. Load Imbalance" column of Table 4: the average
        over the run of the per-step imbalance of the most loaded
        processor.
        """
        if not self.records:
            return 0.0
        weights = np.array([r.coarse_steps for r in self.records], dtype=float)
        imb = np.array([r.imbalance_pct for r in self.records])
        return float((imb * weights).sum() / weights.sum())

    @property
    def aggregate_imbalance_pct(self) -> float:
        """Imbalance of total per-processor work accumulated over the run.

        This is the Table 4 "Max. Load Imbalance" column: how unevenly the
        whole run's work ended up distributed.  It rewards strategies whose
        instantaneous skews cancel over time — notably adaptive switching,
        which is why the paper's adaptive row (8.1 %) beats even
        G-MISP+SP (11.3 %).
        """
        if self.proc_work is None or self.proc_work.sum() == 0:
            return 0.0
        return max_load_imbalance_pct(self.proc_work)

    @property
    def peak_imbalance_pct(self) -> float:
        """Worst single-interval imbalance over the run."""
        if not self.records:
            return 0.0
        return float(max(r.imbalance_pct for r in self.records))

    @property
    def amr_efficiency_pct(self) -> float:
        """Useful cell updates over all updates including ghost overheads."""
        total = self.useful_work + self.ghost_work
        if total == 0:
            return 100.0
        return 100.0 * self.useful_work / total

    @property
    def total_comm_time(self) -> float:
        """Communication seconds over the run."""
        return float(sum(r.comm_time for r in self.records))

    @property
    def total_regrid_time(self) -> float:
        """Repartitioning + migration + bookkeeping seconds over the run."""
        return float(sum(r.regrid_time for r in self.records))

    @property
    def total_checkpoint_time(self) -> float:
        """Coordinated checkpoint seconds over the run."""
        return float(sum(r.checkpoint_time for r in self.records))

    @property
    def total_recovery_time(self) -> float:
        """Rollback + restore + repartition + stall seconds over the run."""
        return float(sum(r.recovery_time for r in self.records))

    @property
    def num_recoveries(self) -> int:
        """Detect → rollback → resume cycles over the run."""
        return len(self.recovery_events)

    @property
    def failures_detected(self) -> int:
        """Processor failures the detector declared during the run."""
        return sum(len(e.failed_nodes) for e in self.recovery_events)

    @property
    def max_recovery_lag(self) -> float:
        """Worst seconds from true failure to resumed execution."""
        return max((e.recovery_lag for e in self.recovery_events), default=0.0)

    def partitioner_usage(self) -> dict[str, int]:
        """Regrid count per partitioner label (adaptive-run diagnostics)."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + 1
        return out


class ExecutionSimulator:
    """Replays an adaptation trace on a cluster under a selection strategy."""

    def __init__(
        self,
        cluster: Cluster,
        num_procs: int | None = None,
        cost_model: CostModel | None = None,
        *,
        options: SimulatorOptions | None = None,
        capacities: np.ndarray | None = _DEPRECATED,
        partition_time_scale: float = _DEPRECATED,
        fault_tolerance: FaultTolerance | bool | None = _DEPRECATED,
        incremental: bool = _DEPRECATED,
    ) -> None:
        """``options`` bundles the simulator tuning (the supported API).

        :class:`~repro.config.SimulatorOptions` collects ``num_procs``,
        ``cost_model``, ``capacities``, ``partition_time_scale``,
        ``fault_tolerance`` and ``incremental`` into one value; the
        positional ``num_procs`` / ``cost_model`` arguments remain
        first-class (the paper-era core signature) and override the
        corresponding options fields when given.

        ``fault_tolerance`` (via options) controls the rollback path:
        ``None`` (default) builds a default :class:`FaultTolerance`
        whenever the cluster carries failure events, a
        :class:`FaultTolerance` tunes detection latency / checkpoint
        costs, and ``False`` disables recovery entirely — failed
        processors then stall the run until repaired.  ``incremental``
        enables the regrid reuse cache
        (:class:`~repro.execsim.reuse.UnitsReuseCache`), bit-identical
        to full recomputation.

        The keyword forms ``capacities=`` / ``partition_time_scale=`` /
        ``fault_tolerance=`` / ``incremental=`` are deprecated shims:
        they keep working (byte-identical results) but emit one
        :class:`DeprecationWarning` per call.
        """
        legacy = {
            name: value
            for name, value in (
                ("capacities", capacities),
                ("partition_time_scale", partition_time_scale),
                ("fault_tolerance", fault_tolerance),
                ("incremental", incremental),
            )
            if value is not _DEPRECATED
        }
        if legacy:
            warnings.warn(
                f"ExecutionSimulator keyword(s) {sorted(legacy)} are "
                f"deprecated; pass options=SimulatorOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        opts = options if options is not None else SimulatorOptions()
        if legacy:
            opts = replace(opts, **legacy)
        if num_procs is not None:
            opts = replace(opts, num_procs=num_procs)
        if cost_model is not None:
            opts = replace(opts, cost_model=cost_model)

        self.cluster = cluster
        self.options = opts
        self.num_procs = opts.num_procs or cluster.num_nodes
        if self.num_procs > cluster.num_nodes:
            raise ValueError(
                f"num_procs {self.num_procs} exceeds cluster size "
                f"{cluster.num_nodes}"
            )
        self.cost = opts.cost_model or CostModel()
        self.capacities = opts.capacities
        self.partition_time_scale = opts.partition_time_scale
        ft = opts.fault_tolerance
        if ft is True:
            ft = FaultTolerance()
        self.fault_tolerance = ft
        self.incremental = opts.incremental

    def _resolve_fault_tolerance(self) -> FaultTolerance | None:
        if self.fault_tolerance is False:
            return None
        if self.fault_tolerance is None:
            faults = self.cluster.failures
            return FaultTolerance() if (faults.events or faults.degraded) else None
        return self.fault_tolerance

    def run(
        self,
        trace: AdaptationTrace,
        selector: PartitionerSelector,
        *,
        num_coarse_steps: int | None = None,
    ) -> RunResult:
        """Simulate the full run described by ``trace``.

        ``num_coarse_steps`` defaults to the trace metadata (or the last
        snapshot's step + the first interval).  An explicit value must be
        a positive integer — ``0`` is rejected rather than silently
        falling back to the trace metadata.
        """
        if len(trace) == 0:
            raise ValueError("trace is empty")
        total_steps = num_coarse_steps
        if total_steps is None:
            total_steps = trace.meta.get("num_coarse_steps")
        elif total_steps < 1:
            raise ValueError(
                f"num_coarse_steps must be >= 1, got {num_coarse_steps}"
            )
        if total_steps is None:
            steps = trace.steps()
            interval = steps[1] - steps[0] if len(steps) > 1 else 1
            total_steps = steps[-1] + interval

        ft = self._resolve_fault_tolerance()
        resilient = ft is not None and bool(
            self.cluster.failures.events or self.cluster.failures.degraded
        )
        detector = (
            FailureDetector(self.cluster, ft.detector) if resilient else None
        )
        # Incremental replay regrids one hierarchy in place, so checkpoints
        # must deep-copy or a restore would return post-mutation state.
        if ft is None:
            ckpt_store = None
        elif ft.checkpoint_dir is not None:
            ckpt_store = DurableCheckpointStore(
                ft.checkpoint_dir, ft.checkpoint, deep_copy=self.incremental
            )
        else:
            ckpt_store = CheckpointStore(
                ft.checkpoint, deep_copy=self.incremental
            )

        result = RunResult(proc_work=np.zeros(self.num_procs))
        prev_partition: Partition | None = None
        sim_time = 0.0
        prev_step_cost: float | None = None
        reuse_cache = UnitsReuseCache() if self.incremental else None

        with obs.span("execsim.run", snapshots=len(trace)):
            for idx, snap in enumerate(trace):
                next_step = (
                    trace[idx + 1].step if idx + 1 < len(trace) else total_steps
                )
                coarse_steps = max(next_step - snap.step, 0)
                if coarse_steps == 0:
                    continue
                interval_t0 = sim_time
                previous_snap = trace[idx - 1] if idx > 0 else None
                decision = selector.decide(snap, previous_snap)
                label = decision.label or decision.partitioner.name

                # Total blackout at the interval boundary: wait until the
                # detector re-admits at least one processor.
                pre_stall = 0.0
                live: list[int] | None = None
                if resilient:
                    live = detector.live_nodes(sim_time)
                    if not live:
                        t_ret = min(
                            detector.next_evictable_alive(p, sim_time)
                            for p in range(self.num_procs)
                        )
                        if math.isinf(t_ret):
                            raise RuntimeError(
                                "all processors failed permanently; the run "
                                "cannot recover"
                            )
                        pre_stall = t_ret - sim_time
                        sim_time = t_ret
                        live = detector.live_nodes(sim_time)

                with obs.span("partition", partitioner=label):
                    if reuse_cache is not None:
                        units = reuse_cache.units_for(
                            snap.hierarchy,
                            granularity=decision.granularity,
                            curve="hilbert",
                        )
                    else:
                        units = build_units(
                            snap.hierarchy, granularity=decision.granularity,
                            curve="hilbert",
                        )
                    weights = (
                        self._degraded_weights(detector, sim_time)
                        if resilient
                        else None
                    )
                    partition = self._partition_over(
                        decision, units, live, weights
                    )
                    metrics = evaluate_partition(partition, prev_partition)

                # Coordinated checkpoint at the regrid boundary.
                checkpoint_t = 0.0
                if ckpt_store is not None:
                    _, checkpoint_t = ckpt_store.save(
                        snap.step, sim_time, snap.hierarchy
                    )

                recs: list[RecoveryRecord] = []
                if resilient:
                    (
                        comp_t,
                        comm_t,
                        ghost,
                        recovery_t,
                        partition,
                        recs,
                        live,
                    ) = self._interval_cost_resilient(
                        partition,
                        snap,
                        decision,
                        units,
                        coarse_steps,
                        sim_time + checkpoint_t,
                        live,
                        detector,
                        ckpt_store,
                        ft,
                    )
                    recovery_t += pre_stall
                    result.recovery_events.extend(recs)
                else:
                    comp_t, comm_t, ghost = self._interval_cost(
                        partition, snap.hierarchy, coarse_steps, sim_time
                    )
                    recovery_t = 0.0
                regrid_t = self._regrid_cost(metrics, partition, snap)
                obs.counter("execsim.sim_seconds", phase="checkpoint").inc(
                    checkpoint_t
                )
                obs.counter("execsim.sim_seconds", phase="recovery").inc(
                    recovery_t
                )
                result.proc_work += partition.proc_loads() * coarse_steps
                sim_time += comp_t + comm_t + regrid_t + checkpoint_t + recovery_t

                imbalance = max_load_imbalance_pct(partition.proc_loads())
                obs.counter("execsim.intervals", partitioner=label).inc()
                obs.counter("execsim.coarse_steps").inc(coarse_steps)
                obs.histogram("execsim.imbalance_pct").observe(imbalance)
                for phase, secs in (
                    ("compute", comp_t),
                    ("comm", comm_t),
                    ("regrid", regrid_t),
                    ("checkpoint", checkpoint_t),
                    ("recovery", recovery_t),
                ):
                    obs.histogram(
                        "execsim.phase_seconds", phase=phase
                    ).observe(secs)

                # Last-value forecast of per-coarse-step cost: the simplest
                # predictor the NWS ensemble carries, evaluated against the
                # interval that just committed.
                step_cost = (
                    comp_t + comm_t + regrid_t + checkpoint_t + recovery_t
                ) / coarse_steps
                forecast_error: float | None = None
                if prev_step_cost is not None and step_cost > 0:
                    forecast_error = (
                        100.0 * abs(prev_step_cost - step_cost) / step_cost
                    )
                prev_step_cost = step_cost

                tl = obs.get_timeline()
                if tl.enabled:
                    if checkpoint_t > 0.0:
                        tl.event(
                            "checkpoint", t=interval_t0, step=snap.step,
                            seconds=checkpoint_t,
                        )
                    for rec in recs:
                        tl.event(
                            "recovery", t=rec.t_detected, step=snap.step,
                            failed_nodes=[int(p) for p in rec.failed_nodes],
                            detection_lag_s=rec.detection_lag,
                            steps_lost=rec.steps_lost,
                        )
                    tl.record(
                        StepSample(
                            step=snap.step,
                            t=interval_t0,
                            coarse_steps=coarse_steps,
                            partitioner=label,
                            octant=decision.octant,
                            compute_s=comp_t,
                            comm_s=comm_t,
                            regrid_s=regrid_t,
                            checkpoint_s=checkpoint_t,
                            recovery_s=recovery_t,
                            imbalance_pct=imbalance,
                            forecast_error_pct=forecast_error,
                            recoveries=len(recs),
                            live_procs=(
                                len(live) if resilient else self.num_procs
                            ),
                        )
                    )

                result.records.append(
                    StepRecord(
                        step=snap.step,
                        label=label,
                        octant=decision.octant,
                        coarse_steps=coarse_steps,
                        compute_time=comp_t,
                        comm_time=comm_t,
                        regrid_time=regrid_t,
                        imbalance_pct=imbalance,
                        metrics=metrics,
                        checkpoint_time=checkpoint_t,
                        recovery_time=recovery_t,
                        recoveries=len(recs),
                        owners=tuple(
                            int(p) for p in np.unique(partition.assignment)
                        )
                        if resilient
                        else (),
                        live_procs=tuple(live) if resilient else (),
                    )
                )
                result.useful_work += (
                    snap.hierarchy.load_per_coarse_step() * coarse_steps
                )
                result.ghost_work += ghost * coarse_steps
                prev_partition = partition
        return result

    # -- partitioning over survivors ---------------------------------------------------

    def _degraded_weights(
        self, detector: FailureDetector, t: float
    ) -> np.ndarray | None:
        """Per-processor capacity down-weights the detector perceives at ``t``.

        ``None`` when no degraded window is visible — the common case, so
        the partition call stays byte-identical to the non-gray path.
        """
        if not self.cluster.failures.degraded:
            return None
        w = np.array(
            [
                detector.detected_capacity_factor(p, t)
                for p in range(self.num_procs)
            ]
        )
        return w if np.any(w < 1.0) else None

    def _partition_over(
        self,
        decision: SelectorDecision,
        units,
        live: list[int] | None = None,
        weights: np.ndarray | None = None,
    ) -> Partition:
        """Partition ``units``, restricted to the ``live`` processors.

        With all processors live this is the ordinary partition call.  In
        degraded mode the partitioner runs over the survivors — with the
        system-sensitive capacities restricted to them when configured —
        and the assignment is mapped back to global processor ids, so
        every unit is owned by a live processor by construction.

        ``weights`` (detector-perceived capacity factors, 1.0 = healthy)
        is the gray-failure response: when any processor is down-weighted
        the split is forced through the capacity-weighted sequence path —
        most partitioners ignore capacities, and a degraded node must
        shed load *without* being evacuated.
        """
        if live is not None and not live:
            raise RuntimeError("no live processors to partition over")
        if live is None or len(live) == self.num_procs:
            if weights is None:
                return decision.partitioner.partition(
                    units, self.num_procs, self.capacities
                )
            return self._weighted_partition(
                decision, units, np.arange(self.num_procs), weights
            )
        live_arr = np.asarray(sorted(live), dtype=int)
        if weights is not None:
            return self._weighted_partition(decision, units, live_arr, weights)
        caps = None
        if self.capacities is not None:
            caps = np.asarray(self.capacities, dtype=float)[live_arr]
            if caps.sum() <= 0:
                caps = None
        sub = decision.partitioner.partition(units, len(live_arr), caps)
        params = dict(sub.params)
        params["degraded"] = True
        params["live_procs"] = [int(p) for p in live_arr]
        obs.counter("resilience.degraded_partitions").inc()
        return Partition(
            units=units,
            num_procs=self.num_procs,
            assignment=live_arr[sub.assignment],
            partitioner_name=sub.partitioner_name,
            partition_time=sub.partition_time,
            params=params,
        )

    def _weighted_partition(
        self,
        decision: SelectorDecision,
        units,
        live_arr: np.ndarray,
        weights: np.ndarray,
    ) -> Partition:
        """Capacity-weighted split over ``live_arr`` with gray down-weights.

        Routes through :class:`HeterogeneousPartitioner` (the
        system-sensitive path) with effective capacities = configured
        capacities × detector down-weights, then maps back to global
        processor ids.  Keeps the selector's decision label/granularity
        semantics out of scope on purpose: proportional load shedding
        matters more than the partitioner flavor while a node is gray.
        """
        from repro.partitioners.hetero import HeterogeneousPartitioner

        base = (
            np.asarray(self.capacities, dtype=float)
            if self.capacities is not None
            else np.ones(self.num_procs)
        )
        caps = (base * np.asarray(weights, dtype=float))[live_arr]
        if caps.sum() <= 0:
            caps = np.ones(len(live_arr))
        sub = HeterogeneousPartitioner().partition(units, len(live_arr), caps)
        params = dict(sub.params)
        params["degraded_downweight"] = True
        params["live_procs"] = [int(p) for p in live_arr]
        params["capacity_weights"] = [float(w) for w in weights[live_arr]]
        obs.counter("resilience.degraded_downweights").inc()
        if len(live_arr) < self.num_procs:
            params["degraded"] = True
            obs.counter("resilience.degraded_partitions").inc()
        return Partition(
            units=units,
            num_procs=self.num_procs,
            assignment=live_arr[sub.assignment],
            partitioner_name=sub.partitioner_name,
            partition_time=sub.partition_time,
            params=params,
        )

    # -- cost integration ------------------------------------------------------------

    def _interval_cost(
        self,
        partition: Partition,
        hierarchy,
        coarse_steps: int,
        t0: float,
    ) -> tuple[float, float, float]:
        """(compute seconds, comm seconds, ghost work per coarse step)."""
        with obs.span("interval_cost", coarse_steps=coarse_steps):
            comp, comm, ghost = self._interval_cost_inner(
                partition, hierarchy, coarse_steps, t0
            )
        obs.counter("execsim.sim_seconds", phase="compute").inc(comp)
        obs.counter("execsim.sim_seconds", phase="comm").inc(comm)
        return comp, comm, ghost

    def _interval_cost_inner(
        self,
        partition: Partition,
        hierarchy,
        coarse_steps: int,
        t0: float,
    ) -> tuple[float, float, float]:
        cost = self.cost
        loads = partition.proc_loads()
        comm_per_step, ghost_work = per_step_comm_times(
            partition, cost, self.cluster.link.bandwidth
        )
        ghost_work += cost.intra_ghost_factor * hierarchy.load_per_coarse_step()

        # Integrate per coarse step with time-varying effective speeds.
        # Latency-tolerant communication overlaps a configured fraction of
        # ghost exchange with computation, but a step never completes
        # before its communication does.
        overlap = cost.comm_overlap
        total_comp = 0.0
        total_comm = 0.0
        t = t0
        static_speeds = (
            self.cluster.loadgen is None
            and not self.cluster.failures.events
            and not self.cluster.failures.degraded
        )

        def step_times(speeds: np.ndarray) -> tuple[float, float]:
            comp = np.zeros(self.num_procs)
            np.divide(loads, speeds, out=comp, where=loads > 0)
            exposed = comp + (1.0 - overlap) * comm_per_step
            step_total = float(
                max(np.max(exposed), float(np.max(comm_per_step, initial=0.0)))
            )
            comp_share = float(np.max(comp))
            return comp_share, max(step_total - comp_share, 0.0)

        if static_speeds:
            speeds = np.array(
                [
                    self.cluster.effective_speed(p, t)
                    for p in range(self.num_procs)
                ]
            )
            comp_share, comm_share = step_times(speeds)
            total_comp = comp_share * coarse_steps
            total_comm = comm_share * coarse_steps
        else:
            failures = self.cluster.failures
            for _ in range(coarse_steps):
                # Without fault tolerance a failed owner stalls the step
                # until its node is repaired (no rollback, no migration);
                # the wait is charged as exposed communication time.  The
                # fault-tolerant path in run() never reaches this code.
                while True:
                    speeds = np.array(
                        [
                            self.cluster.effective_speed(p, t)
                            for p in range(self.num_procs)
                        ]
                    )
                    dead = (loads > 0) & (speeds <= 0.0)
                    if not dead.any():
                        break
                    t_next = min(
                        failures.next_alive_time(int(p), t)
                        for p in np.nonzero(dead)[0]
                    )
                    if math.isinf(t_next):
                        raise RuntimeError(
                            "processors "
                            f"{np.nonzero(dead)[0].tolist()} failed "
                            "permanently during trace replay with fault "
                            "tolerance disabled; enable fault tolerance "
                            "(repro.resilience.FaultTolerance) to recover"
                        )
                    if t_next <= t:
                        # Node is up but starved (background load at 1.0):
                        # re-check after a beat.
                        t_next = t + 1.0
                    total_comm += t_next - t
                    t = t_next
                comp_share, comm_share = step_times(speeds)
                total_comp += comp_share
                total_comm += comm_share
                t += comp_share + comm_share
        return total_comp, total_comm, ghost_work

    def _interval_cost_resilient(
        self,
        partition: Partition,
        snap,
        decision: SelectorDecision,
        units,
        coarse_steps: int,
        t0: float,
        live: list[int],
        detector: FailureDetector,
        ckpt_store: CheckpointStore,
        ft: FaultTolerance,
    ) -> tuple[
        float, float, float, float, Partition, list[RecoveryRecord], list[int]
    ]:
        """Fault-tolerant interval execution.

        Runs the interval's coarse steps with failure detection at every
        step boundary.  An *evictable* failure (one that outlasted both
        the lease and the eviction hysteresis) rolls the interval back to
        the checkpoint taken at its regrid boundary, redistributes over
        the survivors, and re-executes; an undeclared or merely-suspect
        outage (lease not expired, hysteresis still accruing, or a blip
        too short to ever cross either line) stalls execution instead —
        that is what bounds flap-induced rollbacks.  Returns ``(compute,
        comm, ghost, recovery seconds, final partition, recovery records,
        final live set)`` — compute/comm cover only the committed attempt.
        """
        cost = self.cost
        overlap = cost.comm_overlap
        failures = self.cluster.failures
        hierarchy = snap.hierarchy
        intra_ghost = cost.intra_ghost_factor * hierarchy.load_per_coarse_step()

        def prepare(p: Partition):
            loads = p.proc_loads()
            comm_per_step, ghost = per_step_comm_times(
                p, cost, self.cluster.link.bandwidth
            )
            return loads, comm_per_step, ghost + intra_ghost

        loads, comm_per_step, ghost = prepare(partition)
        live = sorted(live)
        t = t0
        steps_done = 0
        attempt_comp = attempt_comm = attempt_stall = 0.0
        recovery_seconds = 0.0
        records: list[RecoveryRecord] = []

        with obs.span("interval_cost_resilient", coarse_steps=coarse_steps):
            while steps_done < coarse_steps:
                dead = [p for p in live if detector.evictable_down(p, t)]
                if dead:
                    if len(records) >= ft.max_recoveries_per_interval:
                        raise RuntimeError(
                            f"livelock at step {snap.step}: "
                            f"{len(records)} recoveries within one regrid "
                            "interval; failures arrive faster than the "
                            "interval can be re-executed"
                        )
                    t_detected = t
                    lag = max(
                        t - detector.true_fail_time(p, t) for p in dead
                    )
                    wasted = attempt_comp + attempt_comm + attempt_stall
                    steps_lost = steps_done
                    attempt_comp = attempt_comm = attempt_stall = 0.0
                    steps_done = 0
                    _, restore_s = ckpt_store.restore()
                    t += restore_s
                    live = [p for p in live if p not in dead]
                    blackout = 0.0
                    if not live:
                        t_ret = min(
                            detector.next_evictable_alive(p, t)
                            for p in range(self.num_procs)
                        )
                        if math.isinf(t_ret):
                            raise RuntimeError(
                                "all processors failed permanently; the "
                                "run cannot recover"
                            )
                        blackout = t_ret - t
                        t = t_ret
                        live = detector.live_nodes(t)
                    prev = partition
                    partition = self._partition_over(
                        decision, units, live,
                        self._degraded_weights(detector, t),
                    )
                    repart_metrics = evaluate_partition(partition, prev)
                    repart_s = self._regrid_cost(
                        repart_metrics, partition, snap
                    )
                    t += repart_s
                    recovery_seconds += wasted + restore_s + blackout + repart_s
                    loads, comm_per_step, ghost = prepare(partition)
                    record = RecoveryRecord(
                        step=snap.step,
                        failed_nodes=tuple(dead),
                        t_detected=t_detected,
                        detection_lag=lag,
                        wasted_seconds=wasted + blackout,
                        restore_seconds=restore_s,
                        repartition_seconds=repart_s,
                        steps_lost=steps_lost,
                        live_after=tuple(live),
                    )
                    records.append(record)
                    obs.counter("resilience.failures_detected").inc(len(dead))
                    obs.counter("resilience.recoveries").inc()
                    obs.counter("resilience.rollback_seconds").inc(
                        wasted + restore_s
                    )
                    obs.histogram("resilience.recovery_lag").observe(
                        record.recovery_lag
                    )
                    continue

                speeds = np.array(
                    [
                        self.cluster.effective_speed(p, t)
                        for p in range(self.num_procs)
                    ]
                )
                stalled = [p for p in live if loads[p] > 0 and speeds[p] <= 0.0]
                if stalled:
                    # Outage that is not yet evictable — lease unexpired,
                    # hysteresis still accruing, or a blip too short to
                    # ever cross the eviction line: work pauses until the
                    # eviction fires or the node returns.  A node that
                    # returns first is a suppressed flap, not a rollback.
                    t_fire = min(
                        detector.eviction_fire_time(p, t) for p in stalled
                    )
                    t_back = min(
                        failures.next_alive_time(p, t) for p in stalled
                    )
                    t_wake = min(t_fire, t_back)
                    if t_back < t_fire:
                        obs.counter("resilience.flap_suppressed").inc()
                    if t_wake <= t:
                        t_wake = t + detector.config.heartbeat_period
                    attempt_stall += t_wake - t
                    obs.counter("resilience.stall_seconds").inc(t_wake - t)
                    t = t_wake
                    continue

                comp = np.zeros(self.num_procs)
                np.divide(loads, speeds, out=comp, where=loads > 0)
                exposed = comp + (1.0 - overlap) * comm_per_step
                step_total = float(
                    max(
                        np.max(exposed),
                        float(np.max(comm_per_step, initial=0.0)),
                    )
                )
                comp_share = float(np.max(comp))
                comm_share = max(step_total - comp_share, 0.0)
                attempt_comp += comp_share
                attempt_comm += comm_share
                t += comp_share + comm_share
                steps_done += 1

        # Transient stalls of the committed attempt are overhead, not work.
        recovery_seconds += attempt_stall
        obs.counter("execsim.sim_seconds", phase="compute").inc(attempt_comp)
        obs.counter("execsim.sim_seconds", phase="comm").inc(attempt_comm)
        return (
            attempt_comp,
            attempt_comm,
            ghost,
            recovery_seconds,
            partition,
            records,
            live,
        )

    def _regrid_cost(self, metrics: PACMetrics, partition: Partition, snap) -> float:
        cost = self.cost
        bw = self.cluster.link.bandwidth
        migration_t = (
            metrics.data_migration
            * cost.bytes_per_migrated_load
            / (bw * max(self.num_procs, 1))
        )
        overhead_t = metrics.overhead * cost.seconds_per_fragment
        # Patch-based partitioners tear down and redistribute the full patch
        # list at every regrid; domain-based schemes shift contiguous
        # ranges incrementally.
        if partition.params.get("full_redistribution", False):
            overhead_t += (
                snap.hierarchy.num_patches * cost.seconds_per_patch_shuffle
            )
        partition_t = metrics.partition_time * self.partition_time_scale
        obs.counter("execsim.sim_seconds", phase="partition").inc(partition_t)
        obs.counter("execsim.sim_seconds", phase="regrid").inc(
            migration_t + overhead_t
        )
        return partition_t + migration_t + overhead_t
