"""The SAMR execution simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.amr.trace import AdaptationTrace
from repro.execsim.costmodel import CostModel
from repro.execsim.selector import PartitionerSelector
from repro.gridsys.cluster import Cluster
from repro.partitioners.base import Partition
from repro.partitioners.metrics import PACMetrics, evaluate_partition
from repro.partitioners.units import build_units
from repro.util.stats import max_load_imbalance_pct

__all__ = [
    "StepRecord",
    "RunResult",
    "ExecutionSimulator",
    "per_step_comm_times",
]


def per_step_comm_times(
    partition: Partition, cost: CostModel, bandwidth: float
) -> tuple[np.ndarray, float]:
    """Per-processor ghost-communication seconds for one coarse step.

    Returns ``(comm_per_step, ghost_work)`` where ``ghost_work`` is the
    partitioner-dependent redundant-update volume (AMR-efficiency
    accounting) — callers add the hierarchy-intrinsic term themselves.
    The communication model: cut-face ghost volume (load-density weighted)
    over the link bandwidth, plus per-neighbor message latency scaled by
    the partitioner's message-aggregation factor.
    """
    num_procs = partition.num_procs
    units = partition.units
    i, j, axis = units.adjacency_arrays()
    comm_bytes = np.zeros(num_procs)
    neighbor_count = np.zeros(num_procs)
    ghost_work = 0.0
    if i.size:
        oi = partition.assignment[i]
        oj = partition.assignment[j]
        cut = oi != oj
        if cut.any():
            shapes = units.unit_shapes()
            cells = shapes.prod(axis=1).astype(float)
            density = units.loads / np.maximum(cells, 1.0)
            other = np.array([[1, 2], [0, 2], [0, 1]])
            face = np.empty(i.size, dtype=float)
            for ax in range(3):
                sel = axis == ax
                if sel.any():
                    o1, o2 = other[ax]
                    a = np.minimum(shapes[i[sel], o1], shapes[j[sel], o1])
                    b = np.minimum(shapes[i[sel], o2], shapes[j[sel], o2])
                    face[sel] = a * b
            vol = (
                face[cut]
                * 0.5
                * (density[i[cut]] + density[j[cut]])
                * cost.ghost_width
            )
            byts = vol * cost.bytes_per_comm_unit
            # Redundant ghost updates (AMR-efficiency accounting) are
            # geometric: cut faces times ghost width, unweighted.
            ghost_work = float(face[cut].sum()) * cost.ghost_width
            np.add.at(comm_bytes, oi[cut], byts)
            np.add.at(comm_bytes, oj[cut], byts)
            # Distinct neighbor processors per processor.
            pairs = np.unique(
                np.stack(
                    [np.minimum(oi[cut], oj[cut]), np.maximum(oi[cut], oj[cut])],
                    axis=1,
                ),
                axis=0,
            )
            np.add.at(neighbor_count, pairs[:, 0], 1.0)
            np.add.at(neighbor_count, pairs[:, 1], 1.0)
    msg_factor = float(partition.params.get("messages_per_neighbor", 3.0))
    comm_per_step = (
        comm_bytes / bandwidth
        + cost.latency_per_neighbor * neighbor_count * msg_factor
    )
    return comm_per_step, ghost_work


@dataclass(frozen=True, slots=True)
class StepRecord:
    """Accounting for one regrid interval (one snapshot)."""

    step: int
    label: str
    octant: str | None
    coarse_steps: int
    compute_time: float
    comm_time: float
    regrid_time: float
    imbalance_pct: float
    metrics: PACMetrics


@dataclass(slots=True)
class RunResult:
    """Aggregate result of one simulated run."""

    records: list[StepRecord] = field(default_factory=list)
    useful_work: float = 0.0
    ghost_work: float = 0.0
    proc_work: np.ndarray | None = None

    @property
    def total_runtime(self) -> float:
        """End-to-end execution time in simulated seconds."""
        return float(
            sum(r.compute_time + r.comm_time + r.regrid_time for r in self.records)
        )

    @property
    def mean_imbalance_pct(self) -> float:
        """Time-weighted mean of per-interval max load imbalance.

        This is the "Max. Load Imbalance" column of Table 4: the average
        over the run of the per-step imbalance of the most loaded
        processor.
        """
        if not self.records:
            return 0.0
        weights = np.array([r.coarse_steps for r in self.records], dtype=float)
        imb = np.array([r.imbalance_pct for r in self.records])
        return float((imb * weights).sum() / weights.sum())

    @property
    def aggregate_imbalance_pct(self) -> float:
        """Imbalance of total per-processor work accumulated over the run.

        This is the Table 4 "Max. Load Imbalance" column: how unevenly the
        whole run's work ended up distributed.  It rewards strategies whose
        instantaneous skews cancel over time — notably adaptive switching,
        which is why the paper's adaptive row (8.1 %) beats even
        G-MISP+SP (11.3 %).
        """
        if self.proc_work is None or self.proc_work.sum() == 0:
            return 0.0
        return max_load_imbalance_pct(self.proc_work)

    @property
    def peak_imbalance_pct(self) -> float:
        """Worst single-interval imbalance over the run."""
        if not self.records:
            return 0.0
        return float(max(r.imbalance_pct for r in self.records))

    @property
    def amr_efficiency_pct(self) -> float:
        """Useful cell updates over all updates including ghost overheads."""
        total = self.useful_work + self.ghost_work
        if total == 0:
            return 100.0
        return 100.0 * self.useful_work / total

    @property
    def total_comm_time(self) -> float:
        """Communication seconds over the run."""
        return float(sum(r.comm_time for r in self.records))

    @property
    def total_regrid_time(self) -> float:
        """Repartitioning + migration + bookkeeping seconds over the run."""
        return float(sum(r.regrid_time for r in self.records))

    def partitioner_usage(self) -> dict[str, int]:
        """Regrid count per partitioner label (adaptive-run diagnostics)."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + 1
        return out


class ExecutionSimulator:
    """Replays an adaptation trace on a cluster under a selection strategy."""

    def __init__(
        self,
        cluster: Cluster,
        num_procs: int | None = None,
        cost_model: CostModel | None = None,
        *,
        capacities: np.ndarray | None = None,
        partition_time_scale: float = 1.0,
    ) -> None:
        self.cluster = cluster
        self.num_procs = num_procs or cluster.num_nodes
        if self.num_procs > cluster.num_nodes:
            raise ValueError(
                f"num_procs {self.num_procs} exceeds cluster size "
                f"{cluster.num_nodes}"
            )
        self.cost = cost_model or CostModel()
        self.capacities = capacities
        self.partition_time_scale = partition_time_scale

    def run(
        self,
        trace: AdaptationTrace,
        selector: PartitionerSelector,
        *,
        num_coarse_steps: int | None = None,
    ) -> RunResult:
        """Simulate the full run described by ``trace``.

        ``num_coarse_steps`` defaults to the trace metadata (or the last
        snapshot's step + the first interval).  An explicit value must be
        a positive integer — ``0`` is rejected rather than silently
        falling back to the trace metadata.
        """
        if len(trace) == 0:
            raise ValueError("trace is empty")
        total_steps = num_coarse_steps
        if total_steps is None:
            total_steps = trace.meta.get("num_coarse_steps")
        elif total_steps < 1:
            raise ValueError(
                f"num_coarse_steps must be >= 1, got {num_coarse_steps}"
            )
        if total_steps is None:
            steps = trace.steps()
            interval = steps[1] - steps[0] if len(steps) > 1 else 1
            total_steps = steps[-1] + interval

        result = RunResult(proc_work=np.zeros(self.num_procs))
        prev_partition: Partition | None = None
        sim_time = 0.0

        with obs.span("execsim.run", snapshots=len(trace)):
            for idx, snap in enumerate(trace):
                next_step = (
                    trace[idx + 1].step if idx + 1 < len(trace) else total_steps
                )
                coarse_steps = max(next_step - snap.step, 0)
                if coarse_steps == 0:
                    continue
                previous_snap = trace[idx - 1] if idx > 0 else None
                decision = selector.decide(snap, previous_snap)
                label = decision.label or decision.partitioner.name
                with obs.span("partition", partitioner=label):
                    units = build_units(
                        snap.hierarchy, granularity=decision.granularity,
                        curve="hilbert",
                    )
                    partition = decision.partitioner.partition(
                        units, self.num_procs, self.capacities
                    )
                    metrics = evaluate_partition(partition, prev_partition)

                comp_t, comm_t, ghost = self._interval_cost(
                    partition, snap.hierarchy, coarse_steps, sim_time
                )
                regrid_t = self._regrid_cost(metrics, partition, snap)
                result.proc_work += partition.proc_loads() * coarse_steps
                sim_time += comp_t + comm_t + regrid_t

                imbalance = max_load_imbalance_pct(partition.proc_loads())
                obs.counter("execsim.intervals", partitioner=label).inc()
                obs.counter("execsim.coarse_steps").inc(coarse_steps)
                obs.histogram("execsim.imbalance_pct").observe(imbalance)

                result.records.append(
                    StepRecord(
                        step=snap.step,
                        label=label,
                        octant=decision.octant,
                        coarse_steps=coarse_steps,
                        compute_time=comp_t,
                        comm_time=comm_t,
                        regrid_time=regrid_t,
                        imbalance_pct=imbalance,
                        metrics=metrics,
                    )
                )
                result.useful_work += (
                    snap.hierarchy.load_per_coarse_step() * coarse_steps
                )
                result.ghost_work += ghost * coarse_steps
                prev_partition = partition
        return result

    # -- cost integration ------------------------------------------------------------

    def _interval_cost(
        self,
        partition: Partition,
        hierarchy,
        coarse_steps: int,
        t0: float,
    ) -> tuple[float, float, float]:
        """(compute seconds, comm seconds, ghost work per coarse step)."""
        with obs.span("interval_cost", coarse_steps=coarse_steps):
            comp, comm, ghost = self._interval_cost_inner(
                partition, hierarchy, coarse_steps, t0
            )
        obs.counter("execsim.sim_seconds", phase="compute").inc(comp)
        obs.counter("execsim.sim_seconds", phase="comm").inc(comm)
        return comp, comm, ghost

    def _interval_cost_inner(
        self,
        partition: Partition,
        hierarchy,
        coarse_steps: int,
        t0: float,
    ) -> tuple[float, float, float]:
        cost = self.cost
        loads = partition.proc_loads()
        comm_per_step, ghost_work = per_step_comm_times(
            partition, cost, self.cluster.link.bandwidth
        )
        ghost_work += cost.intra_ghost_factor * hierarchy.load_per_coarse_step()

        # Integrate per coarse step with time-varying effective speeds.
        # Latency-tolerant communication overlaps a configured fraction of
        # ghost exchange with computation, but a step never completes
        # before its communication does.
        overlap = cost.comm_overlap
        total_comp = 0.0
        total_comm = 0.0
        t = t0
        static_speeds = self.cluster.loadgen is None and not self.cluster.failures.events

        def step_times(speeds: np.ndarray) -> tuple[float, float]:
            comp = loads / speeds
            exposed = comp + (1.0 - overlap) * comm_per_step
            step_total = float(
                max(np.max(exposed), float(np.max(comm_per_step, initial=0.0)))
            )
            comp_share = float(np.max(comp))
            return comp_share, max(step_total - comp_share, 0.0)

        if static_speeds:
            speeds = np.array(
                [
                    self.cluster.effective_speed(p, t)
                    for p in range(self.num_procs)
                ]
            )
            if (dead := speeds <= 0.0).any():
                raise RuntimeError(
                    f"processors {np.nonzero(dead)[0].tolist()} are failed "
                    "during trace replay; the execution simulator has no "
                    "fault handling — run failures through the agent-managed "
                    "environment (repro.agents.mcs) instead"
                )
            comp_share, comm_share = step_times(speeds)
            total_comp = comp_share * coarse_steps
            total_comm = comm_share * coarse_steps
        else:
            for _ in range(coarse_steps):
                speeds = np.array(
                    [
                        self.cluster.effective_speed(p, t)
                        for p in range(self.num_procs)
                    ]
                )
                if (dead := speeds <= 0.0).any():
                    raise RuntimeError(
                        f"processors {np.nonzero(dead)[0].tolist()} are "
                        "failed during trace replay; the execution simulator "
                        "has no fault handling — run failures through the "
                        "agent-managed environment (repro.agents.mcs) instead"
                    )
                comp_share, comm_share = step_times(speeds)
                total_comp += comp_share
                total_comm += comm_share
                t += comp_share + comm_share
        return total_comp, total_comm, ghost_work

    def _regrid_cost(self, metrics: PACMetrics, partition: Partition, snap) -> float:
        cost = self.cost
        bw = self.cluster.link.bandwidth
        migration_t = (
            metrics.data_migration
            * cost.bytes_per_migrated_load
            / (bw * max(self.num_procs, 1))
        )
        overhead_t = metrics.overhead * cost.seconds_per_fragment
        # Patch-based partitioners tear down and redistribute the full patch
        # list at every regrid; domain-based schemes shift contiguous
        # ranges incrementally.
        if partition.params.get("full_redistribution", False):
            overhead_t += (
                snap.hierarchy.num_patches * cost.seconds_per_patch_shuffle
            )
        partition_t = metrics.partition_time * self.partition_time_scale
        obs.counter("execsim.sim_seconds", phase="partition").inc(partition_t)
        obs.counter("execsim.sim_seconds", phase="regrid").inc(
            migration_t + overhead_t
        )
        return partition_t + migration_t + overhead_t
