"""The Scenario protocol: uniform identity + entrypoint for every run.

The paper's evaluation is a family of repeated configurations — Tables
1–5, Figures 1–4, the ablations and the chaos sweeps — that the repo
historically executed through ad-hoc per-module ``run()`` functions with
incompatible signatures.  A :class:`Scenario` gives each configuration a
uniform identity (``name`` + canonicalized ``params`` + deterministic
seed derivation) and a uniform ``run(ctx) -> result`` entrypoint where
``result`` is a plain JSON document, so the sweep engine
(:mod:`repro.sweep.runner`) can fan scenarios across processes and cache
their results content-addressed (:mod:`repro.sweep.cache`).

A process-local registry maps names to scenario objects; the built-in
set (every experiment, ablation and chaos configuration) is populated by
importing :mod:`repro.sweep.builtin`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "Scenario",
    "FunctionScenario",
    "ScenarioContext",
    "canonical_params",
    "derive_seed",
    "jsonify",
    "register",
    "unregister",
    "get_scenario",
    "all_scenarios",
    "filter_scenarios",
]


def canonical_params(params: dict[str, Any]) -> str:
    """Order-independent canonical JSON encoding of a parameter set.

    Keys are sorted and separators fixed, so two dictionaries with the
    same contents in different insertion orders encode identically —
    the property the cache keys and seed derivation rely on.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def derive_seed(name: str, params: dict[str, Any], base_seed: int = 0) -> int:
    """Deterministic 32-bit seed from a scenario identity.

    Hashes ``name`` + canonicalized ``params`` + ``base_seed`` through
    SHA-256, so every (scenario, base seed) pair gets a stable,
    well-separated seed regardless of parameter insertion order.
    """
    payload = f"{name}\n{canonical_params(params)}\n{base_seed}"
    digest = hashlib.sha256(payload.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _np_default(obj: Any) -> Any:
    """JSON fallback for numpy scalars and arrays."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON serializable")


def jsonify(result: Any) -> Any:
    """Normalize a scenario result to plain JSON data.

    Round-trips through the JSON encoder (with a numpy fallback), which
    guarantees a fresh result and a cache-loaded result are structurally
    identical — the property the ``--jobs N`` vs ``--jobs 1``
    bit-identical determinism check rests on.
    """
    return json.loads(json.dumps(result, default=_np_default))


@dataclass(slots=True)
class ScenarioContext:
    """Everything a scenario run may depend on besides its parameters.

    ``seed`` is the scenario's derived seed (see :func:`derive_seed`);
    scenarios with a paper-pinned seed in ``params`` are free to ignore
    it.  ``cache_dir`` points at the shared input cache (reference
    traces); ``trace`` loads the shared RM3D traces through it.
    """

    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    cache_dir: Path | None = None

    def trace(self, spec: str | None = None):
        """Load a shared RM3D adaptation trace by spec.

        ``"small"`` is the reduced CI-sized trace, ``"reference"`` the
        paper's full 800-step trace; both are disk-cached (atomically)
        under ``cache_dir`` and memoized per process.
        """
        if spec is None:
            spec = self.params.get("trace", "small")
        return shared_trace(spec, self.cache_dir)


#: per-process memo of shared traces: (spec, cache_dir) -> trace
_TRACE_MEMO: dict[tuple[str, str], Any] = {}


def shared_trace(spec: str, cache_dir: Path | None = None):
    """The shared trace for ``spec`` (``"small"`` or ``"reference"``)."""
    key = (spec, str(cache_dir) if cache_dir is not None else "")
    trace = _TRACE_MEMO.get(key)
    if trace is not None:
        return trace
    from repro.experiments import common

    if spec == "small":
        trace = common.rm3d_small_trace(cache_dir)
    elif spec == "reference":
        trace = common.rm3d_reference_trace(cache_dir)
    else:
        raise ValueError(
            f"unknown trace spec {spec!r}; choose 'small' or 'reference'"
        )
    _TRACE_MEMO[key] = trace
    return trace


class Scenario:
    """One runnable configuration with a stable identity.

    Subclasses (or :class:`FunctionScenario` instances) provide
    ``run(ctx)`` returning a JSON-serializable document.  ``version`` is
    a per-scenario salt: bump it when the scenario's semantics change so
    cached results are invalidated without touching the global code
    salt.  ``requires`` names shared inputs (``"trace:small"``) the
    runner pre-warms before fanning out workers.
    """

    name: str = ""
    params: dict[str, Any]
    tags: frozenset[str] = frozenset()
    version: str = "1"
    requires: tuple[str, ...] = ()
    description: str = ""

    def __init__(
        self,
        name: str,
        params: dict[str, Any] | None = None,
        *,
        tags: Iterable[str] = (),
        version: str = "1",
        requires: Iterable[str] = (),
        description: str = "",
    ) -> None:
        if not name:
            raise ValueError("scenario name must be non-empty")
        self.name = name
        self.params = dict(params or {})
        self.tags = frozenset(tags)
        self.version = version
        self.requires = tuple(requires)
        self.description = description

    def run(self, ctx: ScenarioContext) -> Any:
        """Execute the scenario; must return JSON-serializable data."""
        raise NotImplementedError

    def render(self, result: Any) -> str:
        """Human-readable text for a result (JSON dump by default)."""
        return json.dumps(result, indent=2, sort_keys=True)

    def derive_seed(self, base_seed: int = 0) -> int:
        """This scenario's deterministic seed for ``base_seed``."""
        return derive_seed(self.name, self.params, base_seed)

    def make_context(
        self, base_seed: int = 0, cache_dir: Path | None = None
    ) -> ScenarioContext:
        """A fresh :class:`ScenarioContext` for one run of this scenario."""
        return ScenarioContext(
            params=dict(self.params),
            seed=self.derive_seed(base_seed),
            cache_dir=cache_dir,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.params!r})"


class FunctionScenario(Scenario):
    """A scenario defined by plain functions (the common case).

    Wraps ``fn(ctx) -> json-able`` and an optional ``render_fn(result)
    -> str``; every built-in experiment/ablation/chaos scenario is one
    of these.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[ScenarioContext], Any],
        params: dict[str, Any] | None = None,
        *,
        render_fn: Callable[[Any], str] | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, params, **kwargs)
        self._fn = fn
        self._render_fn = render_fn

    def run(self, ctx: ScenarioContext) -> Any:
        """Call the wrapped function."""
        return self._fn(ctx)

    def render(self, result: Any) -> str:
        """Call the wrapped renderer (JSON dump when none was given)."""
        if self._render_fn is None:
            return super().render(result)
        return self._render_fn(result)


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the process-local registry; returns it.

    Duplicate names are rejected unless ``replace=True`` — silent
    shadowing of a registered configuration would corrupt cache
    identities.
    """
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by exact name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"scenario {name!r} is not registered; known: "
            f"{sorted(_REGISTRY) or '(none)'}"
        ) from None


def all_scenarios() -> list[Scenario]:
    """Every registered scenario, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def filter_scenarios(
    pattern: str | None = None, tags: Iterable[str] = ()
) -> list[Scenario]:
    """Registered scenarios matching ``pattern`` and all ``tags``.

    ``pattern`` matches by substring or :func:`fnmatch.fnmatch` glob;
    ``None`` matches everything.
    """
    want = frozenset(tags)
    out = []
    for scenario in all_scenarios():
        if want and not want <= scenario.tags:
            continue
        if pattern is not None:
            if pattern not in scenario.name and not fnmatch(
                scenario.name, pattern
            ):
                continue
        out.append(scenario)
    return out
