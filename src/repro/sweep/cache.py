"""Content-addressed on-disk result cache for scenario sweeps.

A cache entry is addressed by the SHA-256 of the scenario's full
identity — name, canonicalized parameters, per-scenario version, and a
global code-version salt — so re-running a sweep only executes
configurations whose identity changed.  Bumping :data:`CODE_SALT`
invalidates every entry at once (do this when a change alters results
across the board); bumping one scenario's ``version`` invalidates just
that scenario.

Entries are JSON documents written via a temp file + atomic
:func:`os.replace`, so concurrent writers (parallel sweeps sharing a
cache directory) can never expose a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = ["CODE_SALT", "ResultCache", "atomic_write_json", "cache_key"]

#: global code-version salt folded into every cache key.  Bump whenever a
#: change to the pipeline alters scenario results across the board.
CODE_SALT = "2026.08-1"


def cache_key(
    name: str,
    params: dict[str, Any],
    *,
    version: str = "1",
    salt: str = CODE_SALT,
) -> str:
    """SHA-256 identity of one scenario configuration (hex digest).

    Stable under parameter reordering (parameters are canonicalized) and
    distinct across names, parameter values, scenario versions and code
    salts.
    """
    from repro.sweep.scenario import canonical_params

    payload = "\n".join(["repro-sweep", salt, version, name,
                         canonical_params(params)])
    return hashlib.sha256(payload.encode()).hexdigest()


def atomic_write_json(path: Path, document: Any) -> None:
    """Write ``document`` as JSON to ``path`` via temp file + rename.

    The rename is atomic on POSIX, so readers either see the old file or
    the complete new one — never a partial write.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(document, fh, separators=(",", ":"))
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on write failure
            tmp.unlink()


class ResultCache:
    """Directory of content-addressed scenario results.

    ``get``/``put`` speak full cache documents (scenario identity +
    result payload); keys come from :func:`cache_key`.  The directory is
    created lazily on first write so a read-only sweep never touches
    disk.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        if directory is None:
            directory = Path(__file__).resolve().parents[3] / ".cache" / "sweep"
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """Filesystem path of the entry addressed by ``key``."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached document for ``key``, or ``None`` on a miss.

        Unreadable/corrupt entries count as misses (they are simply
        overwritten on the next put).
        """
        path = self.path_for(key)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, document: dict[str, Any]) -> Path:
        """Store ``document`` under ``key`` (atomically); returns its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        atomic_write_json(path, document)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
