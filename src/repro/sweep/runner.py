"""The parallel, cache-aware sweep engine.

:class:`SweepRunner` executes a list of registered scenarios: cache hits
are resolved in the parent (no worker is ever spawned for a fully warm
sweep), misses fan out across a :class:`~concurrent.futures.
ProcessPoolExecutor` (``jobs`` workers; ``jobs=1`` runs serially
in-process), and results are collected in task order so the output is
deterministic regardless of completion order.  Fresh results are written
back to the content-addressed :class:`~repro.sweep.cache.ResultCache` by
the parent only — workers never touch the cache, so there are no write
races.

Observability: the sweep emits ``sweep.tasks`` / ``sweep.cache.hits`` /
``sweep.cache.misses`` / ``sweep.errors`` counters and a
``sweep.task_seconds`` histogram through :mod:`repro.obs`, plus per-task
spans on the serial path and a batch span around the parallel fan-out.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro import obs
from repro.partitioners import deterministic_partition_time
from repro.sweep.cache import CODE_SALT, ResultCache, cache_key
from repro.sweep.scenario import (
    Scenario,
    filter_scenarios,
    get_scenario,
    jsonify,
    shared_trace,
)

__all__ = ["TaskResult", "SweepResult", "SweepRunner", "run_sweep"]

#: modules imported in every worker to (re)populate the scenario registry
DEFAULT_SCENARIO_MODULES = ("repro.sweep.builtin",)


@dataclass(slots=True)
class TaskResult:
    """Outcome of one scenario task within a sweep."""

    name: str
    params: dict[str, Any]
    seed: int
    key: str
    cached: bool
    wall_s: float
    result: Any = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the task produced a result (no error)."""
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        """The task record as a JSON-ready document."""
        return {
            "name": self.name,
            "params": self.params,
            "seed": self.seed,
            "key": self.key,
            "cached": self.cached,
            "wall_s": self.wall_s,
            "error": self.error,
            "result": self.result,
        }


@dataclass(slots=True)
class SweepResult:
    """Outcome of one sweep: ordered task results plus aggregates."""

    tasks: list[TaskResult] = field(default_factory=list)
    jobs: int = 1
    base_seed: int = 0
    total_wall_s: float = 0.0
    cache_dir: str | None = None
    cache_enabled: bool = True

    @property
    def cache_hits(self) -> int:
        """Number of tasks resolved from the result cache."""
        return sum(t.cached for t in self.tasks)

    @property
    def cache_misses(self) -> int:
        """Number of tasks that actually executed."""
        return sum(not t.cached for t in self.tasks)

    @property
    def errors(self) -> list[TaskResult]:
        """Tasks that failed."""
        return [t for t in self.tasks if not t.ok]

    @property
    def ok(self) -> bool:
        """True when every task succeeded."""
        return not self.errors

    def to_dict(self) -> dict[str, Any]:
        """The sweep as a JSON-ready document (``BENCH_sweep.json`` shape)."""
        return {
            "bench": "sweep",
            "jobs": self.jobs,
            "base_seed": self.base_seed,
            "total_wall_s": self.total_wall_s,
            "cache": {
                "dir": self.cache_dir,
                "enabled": self.cache_enabled,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "ok": self.ok,
            "tasks": [t.to_dict() for t in self.tasks],
        }

    def render(self) -> str:
        """Human-readable text rendering (the CLI's default output)."""
        lines = ["== Pragma scenario sweep =="]
        cache_note = (
            f"cache {self.cache_dir} (hits {self.cache_hits} / "
            f"misses {self.cache_misses})"
            if self.cache_enabled
            else "cache disabled"
        )
        lines.append(
            f"scenarios: {len(self.tasks)} | jobs {self.jobs} | {cache_note}"
        )
        for t in self.tasks:
            status = "hit " if t.cached else ("FAIL" if not t.ok else "run ")
            note = f"  ! {t.error}" if t.error else ""
            lines.append(f"  [{status}] {t.name:<28} {t.wall_s:8.3f}s{note}")
        lines.append(
            f"total wall {self.total_wall_s:.3f}s | "
            f"{'ok' if self.ok else f'{len(self.errors)} FAILED'}"
        )
        return "\n".join(lines)


def _import_scenario_modules(modules: Sequence[str]) -> None:
    """Import the modules that populate the scenario registry."""
    for module in modules:
        importlib.import_module(module)


def _execute_scenario(
    name: str, base_seed: int, cache_dir: str | None,
    collect_spans: bool = False,
) -> dict[str, Any]:
    """Run one registered scenario; returns ``{"wall_s", "result"}``.

    Module-level so it is picklable for the process pool; looks the
    scenario up in this process's registry (workers import the scenario
    modules in their initializer).  With ``collect_spans`` the scenario
    runs under its own collection window and the payload carries the
    worker's span dicts (``"spans"``), which the parent grafts into its
    tracer — sweep traces then show per-worker activity.
    """
    scenario = get_scenario(name)
    ctx = scenario.make_context(
        base_seed, Path(cache_dir) if cache_dir else None
    )
    t0 = time.perf_counter()
    if collect_spans:
        with obs.collect() as window, deterministic_partition_time():
            result = scenario.run(ctx)
        spans = window.tracer.to_dicts()
    else:
        with deterministic_partition_time():
            result = scenario.run(ctx)
        spans = None
    wall = time.perf_counter() - t0
    payload: dict[str, Any] = {"wall_s": wall, "result": jsonify(result)}
    if spans is not None:
        payload["spans"] = spans
    return payload


def _worker_init(modules: Sequence[str]) -> None:
    """Process-pool initializer: populate the worker's registry."""
    _import_scenario_modules(modules)


def _warm_requirement(req: str, cache_dir: Path | None) -> None:
    """Materialize one shared input (e.g. ``"trace:small"``) in the parent.

    Done before fanning out so N workers do not all generate the same
    multi-second input; unknown requirement kinds are ignored (a
    scenario may declare inputs only it knows how to build).
    """
    kind, _, arg = req.partition(":")
    if kind == "trace" and arg:
        shared_trace(arg, cache_dir)


class SweepRunner:
    """Executes scenario sets in parallel with content-addressed caching.

    ``jobs`` is the worker-process count (1 = serial, in-process);
    ``use_cache=False`` skips both cache reads and writes; ``base_seed``
    feeds every scenario's deterministic seed derivation, so two sweeps
    with the same base seed and scenario set are reproducible.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        base_seed: int = 0,
        cache_dir: str | Path | None = None,
        scenario_modules: Sequence[str] = DEFAULT_SCENARIO_MODULES,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.use_cache = use_cache
        self.base_seed = base_seed
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache = cache if cache is not None else ResultCache(
            self.cache_dir / "sweep" if self.cache_dir is not None else None
        )
        self.scenario_modules = tuple(scenario_modules)

    # -- internals -------------------------------------------------------------

    def _lookup(self, scenario: Scenario, key: str) -> TaskResult | None:
        """Resolve one task from the cache, or ``None`` on a miss."""
        if not self.use_cache:
            return None
        t0 = time.perf_counter()
        doc = self.cache.get(key)
        if doc is None:
            return None
        return TaskResult(
            name=scenario.name,
            params=dict(scenario.params),
            seed=scenario.derive_seed(self.base_seed),
            key=key,
            cached=True,
            wall_s=time.perf_counter() - t0,
            result=doc.get("result"),
        )

    def _store(self, scenario: Scenario, key: str, task: TaskResult) -> None:
        """Write one fresh result back to the cache (parent-only)."""
        if not self.use_cache or not task.ok:
            return
        self.cache.put(key, {
            "scenario": scenario.name,
            "params": dict(scenario.params),
            "version": scenario.version,
            "salt": CODE_SALT,
            "seed": task.seed,
            "wall_s": task.wall_s,
            "result": task.result,
        })

    def _run_serial(self, scenario: Scenario, key: str) -> TaskResult:
        """Execute one miss in-process (the ``jobs=1`` path)."""
        seed = scenario.derive_seed(self.base_seed)
        with obs.span("sweep.task", scenario=scenario.name):
            t0 = time.perf_counter()
            try:
                ctx = scenario.make_context(self.base_seed, self.cache_dir)
                with deterministic_partition_time():
                    result = jsonify(scenario.run(ctx))
                error = None
            except Exception as exc:  # noqa: BLE001 - isolate task failures
                result, error = None, f"{type(exc).__name__}: {exc}"
            wall = time.perf_counter() - t0
        return TaskResult(
            name=scenario.name, params=dict(scenario.params), seed=seed,
            key=key, cached=False, wall_s=wall, result=result, error=error,
        )

    def _run_parallel(
        self, misses: list[tuple[int, Scenario, str]]
    ) -> dict[int, TaskResult]:
        """Fan misses across the pool; returns results keyed by task index."""
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        out: dict[int, TaskResult] = {}
        tracer = obs.get_tracer()
        collect_spans = tracer.enabled
        with obs.span("sweep.batch", jobs=self.jobs, tasks=len(misses)):
            batch_t0 = (
                time.perf_counter() - tracer.epoch if collect_spans else 0.0
            )
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(misses)),
                initializer=_worker_init,
                initargs=(self.scenario_modules,),
            ) as pool:
                futures = [
                    (idx, scenario, key, pool.submit(
                        _execute_scenario, scenario.name, self.base_seed,
                        cache_dir, collect_spans,
                    ))
                    for idx, scenario, key in misses
                ]
                # Collect in submission order: deterministic output
                # independent of completion order.
                for idx, scenario, key, future in futures:
                    seed = scenario.derive_seed(self.base_seed)
                    try:
                        payload = future.result()
                        task = TaskResult(
                            name=scenario.name, params=dict(scenario.params),
                            seed=seed, key=key, cached=False,
                            wall_s=payload["wall_s"],
                            result=payload["result"],
                        )
                        if collect_spans and payload.get("spans"):
                            # Graft the worker's span tree into the parent
                            # trace, re-rooted under a per-scenario prefix
                            # and shifted to the batch's start time.
                            tracer.import_spans(
                                payload["spans"],
                                prefix=f"sweep.worker/{scenario.name}",
                                offset=batch_t0,
                            )
                    except Exception as exc:  # noqa: BLE001
                        task = TaskResult(
                            name=scenario.name, params=dict(scenario.params),
                            seed=seed, key=key, cached=False, wall_s=0.0,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    out[idx] = task
        return out

    # -- public API --------------------------------------------------------------

    def run(self, scenarios: Sequence[Scenario]) -> SweepResult:
        """Execute ``scenarios`` (in order); returns the ordered results."""
        t_start = time.perf_counter()
        keys = [
            cache_key(s.name, s.params, version=s.version) for s in scenarios
        ]
        tasks: list[TaskResult | None] = [None] * len(scenarios)
        misses: list[tuple[int, Scenario, str]] = []
        for idx, (scenario, key) in enumerate(zip(scenarios, keys)):
            hit = self._lookup(scenario, key)
            if hit is not None:
                tasks[idx] = hit
                obs.counter("sweep.cache.hits").inc()
            else:
                misses.append((idx, scenario, key))
                obs.counter("sweep.cache.misses").inc()

        if misses:
            for req in sorted({r for _, s, _ in misses for r in s.requires}):
                _warm_requirement(req, self.cache_dir)
            if self.jobs > 1 and len(misses) > 1:
                fresh = self._run_parallel(misses)
            else:
                fresh = {
                    idx: self._run_serial(scenario, key)
                    for idx, scenario, key in misses
                }
            for idx, scenario, key in misses:
                task = fresh[idx]
                tasks[idx] = task
                self._store(scenario, key, task)

        done: list[TaskResult] = [t for t in tasks if t is not None]
        for task in done:
            obs.counter("sweep.tasks", scenario=task.name).inc()
            obs.histogram("sweep.task_seconds").observe(task.wall_s)
            if not task.ok:
                obs.counter("sweep.errors", scenario=task.name).inc()
        return SweepResult(
            tasks=done,
            jobs=self.jobs,
            base_seed=self.base_seed,
            total_wall_s=time.perf_counter() - t_start,
            cache_dir=str(self.cache.directory),
            cache_enabled=self.use_cache,
        )


def run_sweep(
    pattern: str | None = None,
    *,
    tags: Sequence[str] = (),
    jobs: int = 1,
    use_cache: bool = True,
    base_seed: int = 0,
    cache_dir: str | Path | None = None,
    scenario_modules: Sequence[str] = DEFAULT_SCENARIO_MODULES,
) -> SweepResult:
    """Run the registered scenario set matching ``pattern``/``tags``.

    Imports the scenario modules (populating the built-in registry),
    selects scenarios, and executes them through a :class:`SweepRunner`.
    This is the function behind ``python -m repro sweep``.
    """
    _import_scenario_modules(scenario_modules)
    scenarios = filter_scenarios(pattern, tags)
    runner = SweepRunner(
        jobs,
        use_cache=use_cache,
        base_seed=base_seed,
        cache_dir=cache_dir,
        scenario_modules=scenario_modules,
    )
    return runner.run(scenarios)
