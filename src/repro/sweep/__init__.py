"""``repro.sweep`` — the parallel, cache-aware scenario execution engine.

The substrate for running the reproduction's whole evaluation surface —
experiments, ablations, chaos configurations — as one uniform scenario
set:

- :mod:`repro.sweep.scenario` — the :class:`Scenario` protocol, the
  process-local registry, and deterministic identity (canonical params +
  SHA-256 seed derivation);
- :mod:`repro.sweep.cache` — the content-addressed on-disk result cache
  (scenario name + canonicalized params + code-version salt → JSON);
- :mod:`repro.sweep.runner` — :class:`SweepRunner`, fanning cache
  misses across a process pool with ordered-deterministic collection;
- :mod:`repro.sweep.builtin` — the stock scenario set (imported lazily
  by :func:`run_sweep` and by pool workers, not by this package).

``python -m repro sweep`` is the CLI face; :func:`run_sweep` the
programmatic one::

    from repro.sweep import run_sweep

    result = run_sweep("table*", jobs=4)
    print(result.render())
"""

from repro.sweep.cache import CODE_SALT, ResultCache, atomic_write_json, cache_key
from repro.sweep.runner import SweepResult, SweepRunner, TaskResult, run_sweep
from repro.sweep.scenario import (
    FunctionScenario,
    Scenario,
    ScenarioContext,
    all_scenarios,
    canonical_params,
    derive_seed,
    filter_scenarios,
    get_scenario,
    jsonify,
    register,
    unregister,
)

__all__ = [
    "CODE_SALT",
    "FunctionScenario",
    "ResultCache",
    "Scenario",
    "ScenarioContext",
    "SweepResult",
    "SweepRunner",
    "TaskResult",
    "all_scenarios",
    "atomic_write_json",
    "cache_key",
    "canonical_params",
    "derive_seed",
    "filter_scenarios",
    "get_scenario",
    "jsonify",
    "register",
    "run_sweep",
    "unregister",
]
