"""The built-in scenario set: experiments, ablations, chaos configs.

Importing this module populates the scenario registry
(:mod:`repro.sweep.scenario`) with every stock configuration:

- the nine paper experiments (``table1``–``table5``, ``fig1``–``fig4``)
  in their CI-sized sweep form — trace-consuming experiments run on the
  reduced shared trace, ``table4`` on 16 processors;
- chaos configurations (``chaos-s0``, ``chaos-s1``) — seeded Poisson
  failure replays through the fault-tolerant simulator;
- ablations (``ablation-sfc-curves``, ``ablation-granularity``) —
  partition-quality studies over the curve and granularity axes.

:func:`paper_scenario` builds the *paper-fidelity* variant of an
experiment (reference trace, 64 processors) for ``python -m repro run``;
those are deliberately not registered, so the default sweep set stays
CI-sized.  The sweep workers import this module in their pool
initializer, which is how registered names resolve in child processes.
"""

from __future__ import annotations

from typing import Any

from repro.sweep.scenario import (
    FunctionScenario,
    Scenario,
    ScenarioContext,
    register,
)

__all__ = ["ensure_registered", "experiment_scenario", "paper_scenario"]

#: sweep-sized parameters per experiment (reduced trace, modest procs)
SWEEP_PARAMS: dict[str, dict[str, Any]] = {
    "table1": {"seed": 3},
    "table2": {},
    "table3": {"trace": "small"},
    "table4": {"trace": "small", "num_procs": 16},
    "table5": {"trace": "small", "seed": 42},
    "fig1": {"seed": 21},
    "fig2": {},
    "fig3": {"trace": "small"},
    "fig4": {"trace": "small", "seed": 33},
}

#: paper-fidelity parameters (reference trace, the paper's 64 procs)
PAPER_PARAMS: dict[str, dict[str, Any]] = {
    "table1": {"seed": 3},
    "table2": {},
    "table3": {"trace": "reference"},
    "table4": {"trace": "reference", "num_procs": 64},
    "table5": {"trace": "reference", "seed": 42},
    "fig1": {"seed": 21},
    "fig2": {},
    "fig3": {"trace": "reference"},
    "fig4": {"trace": "reference", "seed": 33},
}


def experiment_scenario(
    name: str, params: dict[str, Any] | None = None
) -> Scenario:
    """A scenario wrapping experiment module ``name``.

    ``params`` defaults to the CI-sized :data:`SWEEP_PARAMS` entry;
    trace-consuming configurations declare their trace as a shared-input
    requirement so the runner pre-warms it before fanning out.
    """
    from repro.experiments import EXPERIMENTS

    module = EXPERIMENTS[name]
    params = dict(SWEEP_PARAMS[name] if params is None else params)
    requires = (f"trace:{params['trace']}",) if "trace" in params else ()
    return FunctionScenario(
        name,
        module.run_scenario,
        params,
        render_fn=module.render_scenario,
        tags={"experiment"} | ({"trace"} if requires else set()),
        requires=requires,
        description=(module.__doc__ or "").strip().splitlines()[0],
    )


def paper_scenario(name: str) -> Scenario:
    """The paper-fidelity variant of experiment ``name`` (not registered)."""
    return experiment_scenario(name, PAPER_PARAMS[name])


def _chaos_run(ctx: ScenarioContext) -> dict:
    """One seeded chaos replay (+ lossy agent soak) as a scenario."""
    from repro.resilience.chaos import ChaosConfig, run_chaos

    p = ctx.params
    config = ChaosConfig(
        num_procs=p.get("num_procs", 8),
        num_coarse_steps=p.get("steps", 48),
        mtbf=p.get("mtbf", 300.0),
        mttr=p.get("mttr", 40.0),
        seeds=(p.get("seed", 0),),
        loss_rate=p.get("loss_rate", 0.05),
    )
    return run_chaos(config)


def _chaos_render(result: dict) -> str:
    from repro.resilience.chaos import render_chaos

    return render_chaos(result)


def _chaos_matrix_run(ctx: ScenarioContext) -> dict:
    """One gray-failure matrix column (a single fault type)."""
    from repro.resilience.chaos import MatrixConfig, run_chaos_matrix

    p = ctx.params
    config = MatrixConfig(
        num_procs=p.get("num_procs", 8),
        num_coarse_steps=p.get("steps", 48),
        fault_types=(p["fault"],),
        intensities=tuple(p.get("intensities", ("low",))),
        seed=p.get("seed", 0),
    )
    return run_chaos_matrix(config)


def _chaos_matrix_render(result: dict) -> str:
    from repro.resilience.chaos import render_chaos_matrix

    return render_chaos_matrix(result)


def _ablation_sfc_curves(ctx: ScenarioContext) -> dict:
    """Hilbert vs Morton partition quality on sampled snapshots."""
    import numpy as np

    from repro.partitioners import (
        SPISPPartitioner,
        build_units,
        evaluate_partition,
    )

    trace = ctx.trace()
    num_procs = ctx.params.get("num_procs", 16)
    samples = ctx.params.get("samples", 8)
    idxs = np.linspace(0, len(trace) - 1, samples).astype(int)
    part = SPISPPartitioner()
    out: dict[str, Any] = {}
    for curve in ("hilbert", "morton"):
        comm, imb = [], []
        for k in idxs:
            units = build_units(
                trace[int(k)].hierarchy, granularity=2, curve=curve
            )
            m = evaluate_partition(part.partition(units, num_procs))
            comm.append(m.comm_volume)
            imb.append(m.load_imbalance_pct)
        out[curve] = {
            "mean_comm_volume": float(np.mean(comm)),
            "mean_imbalance_pct": float(np.mean(imb)),
        }
    out["hilbert_comm_advantage_pct"] = 100.0 * (
        1.0 - out["hilbert"]["mean_comm_volume"]
        / out["morton"]["mean_comm_volume"]
    )
    return out


def _ablation_sfc_render(result: dict) -> str:
    lines = ["Ablation — SFC choice under SP-ISP"]
    for curve in ("hilbert", "morton"):
        d = result[curve]
        lines.append(
            f"  {curve:<8} comm={d['mean_comm_volume']:12.1f} "
            f"imbalance={d['mean_imbalance_pct']:6.2f}%"
        )
    lines.append(
        f"  hilbert comm advantage: "
        f"{result['hilbert_comm_advantage_pct']:.1f}%"
    )
    return "\n".join(lines)


def _ablation_granularity(ctx: ScenarioContext) -> dict:
    """Partition quality vs partitioning granularity on one snapshot."""
    from repro.partitioners import (
        SPISPPartitioner,
        build_units,
        evaluate_partition,
    )

    trace = ctx.trace()
    num_procs = ctx.params.get("num_procs", 16)
    hier = trace[len(trace) // 2].hierarchy
    part = SPISPPartitioner()
    out = {}
    for g in ctx.params.get("granularities", (2, 4, 8)):
        units = build_units(hier, granularity=int(g))
        m = evaluate_partition(part.partition(units, num_procs))
        out[str(g)] = {
            "units": len(units),
            "comm_volume": float(m.comm_volume),
            "imbalance_pct": float(m.load_imbalance_pct),
        }
    return {"granularity": out}


def _ablation_granularity_render(result: dict) -> str:
    lines = ["Ablation — partitioning granularity under SP-ISP",
             f"{'granularity':>12} {'units':>7} {'comm':>12} {'imb(%)':>8}"]
    for g in sorted(result["granularity"], key=int):
        d = result["granularity"][g]
        lines.append(
            f"{g:>12} {d['units']:>7} {d['comm_volume']:>12.1f} "
            f"{d['imbalance_pct']:>8.2f}"
        )
    return "\n".join(lines)


_REGISTERED = False


def ensure_registered() -> None:
    """Populate the registry with the built-in set (idempotent)."""
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True

    from repro.experiments import EXPERIMENTS

    for name in EXPERIMENTS:
        register(experiment_scenario(name))

    for seed in (0, 1):
        register(FunctionScenario(
            f"chaos-s{seed}",
            _chaos_run,
            {"num_procs": 8, "steps": 48, "seed": seed, "loss_rate": 0.05,
             "mtbf": 300.0, "mttr": 40.0},
            render_fn=_chaos_render,
            tags={"chaos"},
            description="Seeded Poisson failure replay + lossy agent soak",
        ))

    from repro.resilience.chaos import FAULT_TYPES

    for fault in FAULT_TYPES:
        register(FunctionScenario(
            f"chaos-matrix-{fault}",
            _chaos_matrix_run,
            {"num_procs": 8, "steps": 48, "fault": fault,
             "intensities": ["low"], "seed": 0},
            render_fn=_chaos_matrix_render,
            tags={"chaos", "matrix"},
            description=f"Gray-failure matrix column: {fault} faults "
                        "at low intensity, invariant-gated",
        ))

    register(FunctionScenario(
        "ablation-sfc-curves",
        _ablation_sfc_curves,
        {"trace": "small", "num_procs": 16, "samples": 8},
        render_fn=_ablation_sfc_render,
        tags={"ablation", "trace"},
        requires=("trace:small",),
        description="Hilbert vs Morton partition quality under SP-ISP",
    ))
    register(FunctionScenario(
        "ablation-granularity",
        _ablation_granularity,
        {"trace": "small", "num_procs": 16, "granularities": [2, 4, 8]},
        render_fn=_ablation_granularity_render,
        tags={"ablation", "trace"},
        requires=("trace:small",),
        description="Partition quality vs partitioning granularity",
    ))


ensure_registered()
