"""Worklist form of the pBD-ISP binary dissection.

The scalar reference recurses subcube-by-subcube; this kernel drives the
same dissection from an explicit worklist of (subcube, processor-range)
items, so deep processor trees cost no Python recursion frames and the
per-node work is only the axis scans themselves.  The cut decision is
shared with the scalar backend (:func:`choose_bisection_cut` in
:mod:`repro.partitioners.pbd_isp`), so the two traversals place
identical planes and the owner cubes agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.pbd_isp import choose_bisection_cut

__all__ = ["pbd_partition_cube_vector"]


def pbd_partition_cube_vector(cube: np.ndarray, num_procs: int) -> np.ndarray:
    """Owner cube for a recursive-bisection partition over ``num_procs``."""
    owners = np.zeros(cube.shape, dtype=int)
    full = (slice(0, cube.shape[0]), slice(0, cube.shape[1]),
            slice(0, cube.shape[2]))
    work: list[tuple[tuple[slice, slice, slice], int, int]] = [
        (full, 0, num_procs)
    ]
    while work:
        region, proc_lo, proc_hi = work.pop()
        nprocs = proc_hi - proc_lo
        sub = cube[region]
        if nprocs <= 1:
            owners[region] = proc_lo
            continue
        plan = choose_bisection_cut(sub, nprocs)
        if plan is None:
            owners[region] = proc_lo
            continue
        axis, cut, p1 = plan
        lo_region = list(region)
        hi_region = list(region)
        base = region[axis].start
        lo_region[axis] = slice(base, base + cut)
        hi_region[axis] = slice(base + cut, region[axis].stop)
        work.append((tuple(hi_region), proc_lo + p1, proc_hi))
        work.append((tuple(lo_region), proc_lo, proc_lo + p1))
    return owners
