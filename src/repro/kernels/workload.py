"""Patch-batched composite load-map accumulation.

The scalar reference walks the hierarchy patch by patch — coarsen the
box, compute per-axis fine-cell overlap counts, outer-product a block,
slice-add it into the base array — which costs a fixed Python/numpy
dispatch overhead *per patch* and dominates on hierarchies with many
small patches.  This kernel processes every patch of a level at once
with ragged (offset-indexed) arrays and lands all contributions in a
single ``np.bincount`` scatter.

Bit-identity with the scalar loop: per base cell the contribution of a
patch is ``weight * float(cx * cy * cz)`` — an exact int64 product cast
to float, then one float multiply, the same two operations the scalar
path performs — and ``np.bincount`` accumulates its weights in input
order onto a zero output, while the base array also starts at zero, so
the per-cell float additions happen in exactly the scalar order
(levels in order, patches in level order).
"""

from __future__ import annotations

import numpy as np

__all__ = ["composite_values_vector"]


def _ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[k], starts[k] + lengths[k])``."""
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    total = int(lengths.sum())
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, lengths)
        + np.repeat(starts, lengths)
    )


def composite_values_vector(hierarchy) -> np.ndarray:
    """Base-grid load array of :func:`repro.amr.workload.composite_load_map`."""
    domain = hierarchy.domain
    _, ny, nz = domain.shape
    dlo = np.asarray(domain.lo, dtype=np.int64)
    dhi = np.asarray(domain.hi, dtype=np.int64)
    values = np.zeros(domain.shape, dtype=float)
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []

    for lvl in hierarchy.levels:
        if not lvl.patches:
            continue
        ratio = hierarchy.cumulative_ratio(lvl.index)
        weight = np.array(
            [p.load_per_cell * ratio for p in lvl.patches], dtype=float
        )
        flo = np.array([p.box.lo for p in lvl.patches], dtype=np.int64)
        fhi = np.array([p.box.hi for p in lvl.patches], dtype=np.int64)
        # Coarsen to base space and clip to the domain in one step: the
        # clipped coarse range is exactly the scalar path's
        # ``coarse.intersection(domain)`` block slice.
        clo = np.maximum(flo // ratio, dlo)
        chi = np.minimum(-(-fhi // ratio), dhi)
        m = np.maximum(chi - clo, 0)
        cells = m[:, 0] * m[:, 1] * m[:, 2]
        keep = cells > 0
        if not keep.any():
            continue
        weight, flo, fhi, clo, m, cells = (
            arr[keep] for arr in (weight, flo, fhi, clo, m, cells)
        )

        # Per-axis ragged fine-overlap counts (the _axis_overlap arrays of
        # every patch, concatenated).
        counts: list[np.ndarray] = []
        offsets: list[np.ndarray] = []
        for axis in range(3):
            lengths = m[:, axis]
            coarse_idx = _ragged_arange(clo[:, axis], lengths)
            lo_rep = np.repeat(flo[:, axis], lengths)
            hi_rep = np.repeat(fhi[:, axis], lengths)
            starts = np.maximum(coarse_idx * ratio, lo_rep)
            ends = np.minimum((coarse_idx + 1) * ratio, hi_rep)
            counts.append(np.maximum(ends - starts, 0))
            offsets.append(np.concatenate([[0], np.cumsum(lengths)[:-1]]))

        # Decompose each patch-local cell number into (a, b, c) block
        # coordinates, gather the three axis counts, and emit the
        # contribution value plus its flat domain index.
        local = _ragged_arange(np.zeros(cells.size, dtype=np.int64), cells)
        my_rep = np.repeat(m[:, 1], cells)
        mz_rep = np.repeat(m[:, 2], cells)
        c = local % mz_rep
        rem = local // mz_rep
        b = rem % my_rep
        a = rem // my_rep
        cx = counts[0][np.repeat(offsets[0], cells) + a]
        cy = counts[1][np.repeat(offsets[1], cells) + b]
        cz = counts[2][np.repeat(offsets[2], cells) + c]
        val_parts.append(
            np.repeat(weight, cells) * (cx * cy * cz).astype(float)
        )
        gx = np.repeat(clo[:, 0] - dlo[0], cells) + a
        gy = np.repeat(clo[:, 1] - dlo[1], cells) + b
        gz = np.repeat(clo[:, 2] - dlo[2], cells) + c
        idx_parts.append((gx * ny + gy) * nz + gz)

    if idx_parts:
        idx = np.concatenate(idx_parts)
        vals = np.concatenate(val_parts)
        values.reshape(-1)[:] += np.bincount(
            idx, weights=vals, minlength=values.size
        )
    return values
