"""Vectorized execsim communication-cost kernel.

Numpy replacement for the scalar per-adjacency-pair loop in
:func:`repro.execsim.costmodel.comm_cost_terms_scalar`: face areas are
computed per axis with masked ``np.minimum``, the per-processor byte
scatter is one ``np.bincount`` over both endpoint passes (owner-``i``
contributions in pair order, then owner-``j`` — the exact accumulation
order of the scalar loop, so the sums are bit-identical), neighbor-set
sizes come
from a ``np.unique`` over packed owner pairs, and the redundant-update
volume is a sequential ``cumsum`` reduction (pairwise ``np.sum`` would
drift from the scalar loop in the last ulp).
"""

from __future__ import annotations

import numpy as np

__all__ = ["comm_cost_terms_vector"]

#: face-area axis pairs: the two extents orthogonal to each adjacency axis
_OTHER_AXES = np.array([[1, 2], [0, 2], [0, 1]])


def comm_cost_terms_vector(
    i: np.ndarray,
    j: np.ndarray,
    axis: np.ndarray,
    assignment: np.ndarray,
    shapes: np.ndarray,
    loads: np.ndarray,
    num_procs: int,
    ghost_width: float,
    bytes_per_comm_unit: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Vector half of the comm-cost kernel pair (see the scalar contract)."""
    comm_bytes = np.zeros(num_procs)
    neighbor_count = np.zeros(num_procs)
    if i.size == 0:
        return comm_bytes, neighbor_count, 0.0
    oi = assignment[i]
    oj = assignment[j]
    cut = oi != oj
    if not cut.any():
        return comm_bytes, neighbor_count, 0.0

    ic = i[cut]
    jc = j[cut]
    axc = axis[cut]
    oic = oi[cut]
    ojc = oj[cut]

    face = np.empty(ic.size, dtype=float)
    for ax in range(3):
        sel = axc == ax
        if sel.any():
            o1, o2 = _OTHER_AXES[ax]
            a = np.minimum(shapes[ic[sel], o1], shapes[jc[sel], o1])
            b = np.minimum(shapes[ic[sel], o2], shapes[jc[sel], o2])
            face[sel] = a * b

    cells = shapes.prod(axis=1).astype(float)
    density = loads / np.maximum(cells, 1.0)
    vol = face * 0.5 * (density[ic] + density[jc]) * ghost_width
    byts = vol * bytes_per_comm_unit

    # One bincount over both endpoint passes: per processor the weights
    # accumulate sequentially in input order — all owner-i contributions
    # in pair order, then all owner-j — exactly the scalar loop's order.
    # (Two separate bincounts would group each pass into a partial sum
    # first and drift from the scalar result in the last ulp.)
    comm_bytes += np.bincount(
        np.concatenate([oic, ojc]),
        weights=np.concatenate([byts, byts]),
        minlength=num_procs,
    )

    # Distinct neighbor processors per processor, via packed owner pairs.
    lo = np.minimum(oic, ojc).astype(np.int64)
    hi = np.maximum(oic, ojc).astype(np.int64)
    packed = np.unique(lo * np.int64(num_procs) + hi)
    neighbor_count += np.bincount(
        (packed // num_procs).astype(np.intp), minlength=num_procs
    ).astype(float)
    neighbor_count += np.bincount(
        (packed % num_procs).astype(np.intp), minlength=num_procs
    ).astype(float)

    # Sequential reduction: matches the scalar loop's accumulation order.
    ghost_work = float(np.cumsum(face)[-1]) * ghost_width
    return comm_bytes, neighbor_count, ghost_work
