"""Deterministic op-level microbenchmarks for the kernel pairs.

``python -m repro kernels-bench`` times every kernel pair (scalar
reference vs vectorized) on seeded synthetic inputs and writes a
``BENCH_kernels.json`` document.  Wall-clock leaves follow the
``wall_*_s`` / ``speedup`` naming that the :mod:`repro.obs.benchdiff`
gate ignores; the gateable leaves are the cross-backend ``match``
booleans and the output ``digest`` strings, which must stay stable
across machines and runs.

Inputs are generated from ``np.random.default_rng(seed).random()``
only — the one generator method with a version-stable stream — so the
digests in a committed baseline stay reproducible.
"""

from __future__ import annotations

import hashlib
import math
import time

import numpy as np

from repro import kernels

__all__ = ["run_kernels_bench", "render_kernels_bench"]

#: unit counts for the 1-D sequence kernels (largest drives the CI gate)
DEFAULT_SIZES = (1_000, 10_000, 100_000)

#: lattice shape for the pBD dissection kernel
PBD_SHAPE = (32, 32, 32)

#: base-domain shape for the composite load-map kernel
WORKLOAD_SHAPE = (64, 32, 32)


def _digest(values: np.ndarray) -> str:
    payload = ",".join(str(v) for v in np.asarray(values).reshape(-1).tolist())
    return hashlib.sha256(payload.encode()).hexdigest()


def _best_of(fn, repeats: int):
    """(best wall seconds, last result) over ``repeats`` calls."""
    best = math.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _pair(fn, repeats: int) -> dict:
    """Time ``fn`` under both backends and compare the outputs."""
    with kernels.use_backend("scalar"):
        wall_s, ref = _best_of(fn, repeats)
    with kernels.use_backend("vector"):
        wall_v, out = _best_of(fn, repeats)
    match = bool(np.array_equal(np.asarray(ref), np.asarray(out)))
    return {
        "wall_scalar_s": wall_s,
        "wall_vector_s": wall_v,
        "speedup": wall_s / wall_v if wall_v > 0 else float("inf"),
        "match": match,
        "digest": _digest(out),
    }


def _sequence_loads(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random loads with a few deterministic heavy spikes."""
    loads = rng.random(n)
    loads[:: max(n // 7, 1)] *= 100.0
    return loads


def _bench_hierarchies(rng: np.random.Generator) -> dict:
    """Named hierarchies spanning the patch-count regimes.

    ``bulky``: a noise field clustered into few large patches (slice adds
    are near-optimal there); ``spiky``: sparse isolated spikes clustered
    into many small patches (the per-patch dispatch overhead the scatter
    kernel removes).
    """
    from repro.amr.box import Box
    from repro.amr.regrid import Regridder, RegridPolicy

    domain = Box((0, 0, 0), WORKLOAD_SHAPE)
    noise = rng.random(domain.shape)
    bulky = Regridder(
        domain, RegridPolicy(thresholds=(0.55, 0.85))
    ).regrid(noise)
    spikes = np.where(rng.random(domain.shape) > 0.985, 1.0, 0.0)
    spiky = Regridder(domain, RegridPolicy(thresholds=(0.5,))).regrid(spikes)
    return {"bulky": bulky, "spiky": spiky}


def run_kernels_bench(
    *,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    procs: int = 64,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Time every kernel pair; returns the ``BENCH_kernels.json`` document."""
    from repro.amr.workload import composite_load_map
    from repro.partitioners.gmisp import variable_grain_segments
    from repro.partitioners.pbd_isp import pbd_partition_cube
    from repro.partitioners.sequence import (
        greedy_sequence_partition,
        optimal_sequence_partition,
        weighted_sequence_partition,
    )

    rng = np.random.default_rng(seed)
    doc: dict = {
        "meta": {
            "seed": seed,
            "procs": procs,
            "repeats": repeats,
            "sizes": list(sizes),
        },
        "kernels": {},
    }

    greedy: dict = {}
    weighted: dict = {}
    optimal: dict = {}
    gmisp: dict = {}
    for n in sizes:
        loads = _sequence_loads(rng, n)
        capacities = rng.random(procs) + 0.05
        key = f"n{n}"
        greedy[key] = _pair(lambda: greedy_sequence_partition(loads, procs),
                            repeats)
        weighted[key] = _pair(
            lambda: weighted_sequence_partition(loads, procs, capacities),
            repeats,
        )
        optimal[key] = _pair(lambda: optimal_sequence_partition(loads, procs),
                             repeats)
        gmisp[key] = _pair(
            lambda: variable_grain_segments(loads, procs, 64, 0.25), repeats
        )
    doc["kernels"]["greedy"] = greedy
    doc["kernels"]["weighted"] = weighted
    doc["kernels"]["optimal"] = optimal
    doc["kernels"]["gmisp_segments"] = gmisp

    cube = rng.random(PBD_SHAPE)
    doc["kernels"]["pbd"] = {
        "cube32": _pair(lambda: pbd_partition_cube(cube, procs), repeats)
    }

    doc["kernels"]["workload"] = {
        name: _pair(lambda h=h: composite_load_map(h).values, repeats)
        for name, h in _bench_hierarchies(rng).items()
    }

    largest = f"n{max(sizes)}"
    doc["gate"] = {
        "largest_n": max(sizes),
        "greedy_speedup_at_largest": greedy[largest]["speedup"],
        "weighted_speedup_at_largest": weighted[largest]["speedup"],
        "all_match": all(
            entry["match"]
            for kern in doc["kernels"].values()
            for entry in kern.values()
        ),
    }
    return doc


def render_kernels_bench(doc: dict) -> str:
    """Human-readable table of the bench document."""
    lines = [
        "kernels microbenchmark "
        f"(seed={doc['meta']['seed']}, procs={doc['meta']['procs']}, "
        f"best of {doc['meta']['repeats']})",
        f"{'kernel':<16} {'case':<14} {'scalar':>10} {'vector':>10} "
        f"{'speedup':>8}  match",
    ]
    for kern, cases in doc["kernels"].items():
        for case, entry in cases.items():
            lines.append(
                f"{kern:<16} {case:<14} "
                f"{entry['wall_scalar_s'] * 1e3:>8.2f}ms "
                f"{entry['wall_vector_s'] * 1e3:>8.2f}ms "
                f"{entry['speedup']:>7.1f}x  "
                f"{'ok' if entry['match'] else 'MISMATCH'}"
            )
    gate = doc["gate"]
    lines.append(
        f"gate: greedy {gate['greedy_speedup_at_largest']:.1f}x, weighted "
        f"{gate['weighted_speedup_at_largest']:.1f}x at n={gate['largest_n']}; "
        f"all_match={gate['all_match']}"
    )
    return "\n".join(lines)
