"""Vectorized variable-grain segmentation for G-MISP / G-MISP+SP.

The scalar reference recurses block-by-block (split while a block's load
exceeds the threshold); this kernel processes the whole *generation* of
blocks at once: one boolean mask decides every split of the round, so
the Python-level work is ``O(log coarse)`` rounds instead of one call
per block.  The split decision of an individual block — ``load >
threshold and size > 1``, children cut at ``(lo + hi) // 2`` — is
order-independent, so the resulting segment-boundary *set* is identical
to the recursion's and the two backends agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["variable_grain_bounds_vector"]


def variable_grain_bounds_vector(
    prefix: np.ndarray, n: int, coarse: int, threshold: float
) -> np.ndarray:
    """Segment start bounds (sorted, without the trailing ``n`` sentinel).

    ``prefix`` is the length ``n + 1`` inclusive load prefix (leading
    zero); blocks of ``coarse`` units split while their load
    ``prefix[hi] - prefix[lo]`` exceeds ``threshold`` and they hold more
    than one unit.
    """
    lo = np.arange(0, n, coarse)
    hi = np.minimum(lo + coarse, n)
    done_lo: list[np.ndarray] = []
    while lo.size:
        split = (prefix[hi] - prefix[lo] > threshold) & (hi - lo > 1)
        if not split.any():
            done_lo.append(lo)
            break
        done_lo.append(lo[~split])
        slo, shi = lo[split], hi[split]
        mid = (slo + shi) // 2
        lo = np.concatenate([slo, mid])
        hi = np.concatenate([mid, shi])
    if not done_lo:  # pragma: no cover - n == 0 is rejected upstream
        return np.zeros(0, dtype=int)
    bounds = np.concatenate(done_lo)
    bounds.sort()
    return bounds
