"""Numpy-vectorized kernels for the partitioning hot path.

The adaptive meta-partitioner re-partitions the SAMR hierarchy at every
regrid step, so the composite-load → linearize → partition loop dominates
the reproduction's runtime.  This package holds vectorized replacements
for its inner loops:

- :mod:`repro.kernels.sequence` — greedy / weighted / optimal sequence
  partitioning over the curve-ordered loads,
- :mod:`repro.kernels.gmisp` — variable-grain curve segmentation
  (worklist splitting instead of per-block recursion),
- :mod:`repro.kernels.pbd` — p-way binary dissection of the load cube
  (explicit stack instead of recursion),
- :mod:`repro.kernels.workload` — composite load-map accumulation
  (per-level bucketed scatter instead of per-patch slice arithmetic),
- :mod:`repro.kernels.costmodel` — the execution simulator's
  communication cost terms (bincount scatters over the adjacency
  arrays instead of a per-pair Python loop).

Every kernel is a drop-in replacement for a scalar reference
implementation that stays in the owning module; the pair is selected by
the process-wide *backend*:

- ``REPRO_KERNELS=vector`` (the default) — vectorized kernels,
- ``REPRO_KERNELS=scalar`` — the original scalar loops.

The two backends are **bit-identical**: the differential suites in
``tests/test_kernels.py`` and ``tests/test_execsim_kernels.py`` prove
equal outputs against the frozen scalar oracles under
``tests/reference/`` over randomized and golden corpora, and the
property suite in ``tests/test_partitioner_properties.py`` checks the
partition invariants under both.  ``python -m repro kernels-bench`` and
``python -m repro execsim-bench`` time each kernel pair on sized inputs
and write ``BENCH_kernels.json`` / ``BENCH_execsim.json`` (see
:mod:`repro.kernels.bench`, :mod:`repro.execsim.bench`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "active_backend",
    "set_backend",
    "use_backend",
    "vectorized",
]

#: recognized kernel backends, in preference order
BACKENDS = ("vector", "scalar")

#: backend used when ``REPRO_KERNELS`` is unset
DEFAULT_BACKEND = "vector"

#: environment variable consulted (once, lazily) for the initial backend
ENV_VAR = "REPRO_KERNELS"

_backend: str | None = None  # resolved lazily so tests can patch the env


def _validate(name: str) -> str:
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKENDS}"
        )
    return name


def active_backend() -> str:
    """The backend in force: ``set_backend`` override, else ``REPRO_KERNELS``.

    The environment variable is read once, on first use; later changes
    take effect through :func:`set_backend` / :func:`use_backend`.
    """
    global _backend
    if _backend is None:
        _backend = _validate(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
    return _backend


def set_backend(name: str) -> str:
    """Install ``name`` as the process-wide kernel backend; returns it."""
    global _backend
    _backend = _validate(name)
    return _backend


@contextmanager
def use_backend(name: str):
    """Scoped backend override (the differential tests' workhorse)."""
    global _backend
    prev = active_backend()
    set_backend(name)
    try:
        yield _backend
    finally:
        _backend = prev


def vectorized() -> bool:
    """True when the vector backend is active."""
    return active_backend() == "vector"
