"""Vectorized 1-D sequence-partitioning kernels.

Each function here is the vector half of a kernel pair whose scalar half
lives in :mod:`repro.partitioners.sequence`; both halves are proven
bit-identical by the differential suite.  The vectorizations replace the
per-item Python loops with prefix sums and ``np.searchsorted`` boundary
placement:

- the greedy fill becomes a *chase* of a non-decreasing target sequence
  (thresholds crossed by the load prefix, floored by the keep-enough-
  items-for-the-remaining-processors reserve), solved in closed form
  with a running minimum;
- the capacity-weighted split becomes a single ``searchsorted`` of the
  exclusive load prefix into the cumulative capacity targets.

Inputs arrive validated (non-empty 1-D non-negative float ``loads``,
``p >= 1``) — the public wrappers in ``partitioners/sequence.py`` own
the checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "greedy_owners_vector",
    "weighted_owners_vector",
    "boundaries_to_assignment_vector",
]


def greedy_owners_vector(loads: np.ndarray, p: int) -> np.ndarray:
    """Vector twin of the scalar greedy fill (owner array, curve order).

    The scalar loop advances ``seg`` by at most one per item, whenever
    the running load crossed the next fair-share threshold *or* the
    remaining items are just enough to give every remaining processor
    one.  Both triggers are "``seg`` is below a non-decreasing target
    ``g(i)``", so the sequential chase has the closed form::

        s(i) = min(i + 1,  min_{j <= i} (g(j) + i - j))

    computed with one ``np.minimum.accumulate``.  ``owners[i]`` is the
    segment *before* item ``i`` was processed, i.e. ``s(i - 1)``.
    """
    n = loads.size
    owners = np.zeros(n, dtype=int)
    if p == 1 or n == 1:
        return owners
    total = loads.sum()
    target = total / p
    prefix = np.cumsum(loads)
    idx = np.arange(n)
    # Thresholds target*(seg+1) exactly as the scalar comparison builds
    # them (one float multiply each); crossed(i) counts how many the
    # inclusive prefix has reached.
    thresholds = target * np.arange(1, p)
    crossed = np.searchsorted(thresholds, prefix, side="right")
    # Reserve floor: after item i there are n-1-i items left; the scalar
    # loop force-closes whenever that is <= the processors still to fill.
    reserve = idx + 1 + (p - n)
    g = np.minimum(np.maximum(crossed, reserve), p - 1)
    s = np.minimum(np.minimum.accumulate(g - idx) + idx, idx + 1)
    owners[1:] = s[:-1]
    return owners


def weighted_owners_vector(
    loads: np.ndarray, p: int, capacities: np.ndarray, total: float
) -> np.ndarray:
    """Vector twin of the capacity-weighted split.

    The scalar loop advances past every cumulative capacity target the
    *exclusive* load prefix has reached before assigning each item, so
    the owner of item ``i`` is simply the count of targets ``<=
    prefix[i-1]`` — one ``searchsorted`` (capped at ``p - 1`` because
    only the first ``p - 1`` targets are cut points).
    """
    prefix = np.cumsum(loads)
    before = np.concatenate([[0.0], prefix[:-1]])
    cum_target = np.cumsum(capacities) / capacities.sum() * total
    return np.searchsorted(cum_target[: p - 1], before, side="right")


def boundaries_to_assignment_vector(
    boundaries: np.ndarray, n: int, p: int
) -> np.ndarray:
    """Vector twin of the boundary → owner-array expansion."""
    return np.repeat(np.arange(p), np.diff(boundaries))
