"""One composing entry point for the runtime's configuration surface.

Seven PRs of growth left the reproduction with configuration scattered
across constructors: the execution simulator accumulated keyword
arguments (``capacities``, ``partition_time_scale``, ``fault_tolerance``,
``incremental``), while fault tolerance split across three independent
knob bundles (:class:`~repro.resilience.recovery.FaultTolerance`,
:class:`~repro.resilience.detector.DetectorConfig`,
:class:`~repro.agents.message_center.DeliveryPolicy`) that callers had
to wire together by hand.  This module consolidates both:

- :class:`SimulatorOptions` is the execution simulator's tuning bundle.
  ``ExecutionSimulator(cluster, options=SimulatorOptions(...))`` replaces
  the legacy keyword soup; the old keywords still work through
  deprecation shims that emit :class:`DeprecationWarning`.
- :class:`RuntimeConfig` composes the detector, delivery, checkpoint and
  simulator knobs into one document-shaped object with factory methods
  (:meth:`RuntimeConfig.fault_tolerance`,
  :meth:`RuntimeConfig.build_simulator`,
  :meth:`RuntimeConfig.build_message_center`,
  :meth:`RuntimeConfig.build_detector`, :meth:`RuntimeConfig.build_server`)
  so one object configures a whole run.

Both classes are part of the stable public surface (:mod:`repro.api`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.agents.message_center import DeliveryPolicy
from repro.resilience.checkpoint import CheckpointCostModel
from repro.resilience.detector import DetectorConfig
from repro.resilience.recovery import FaultTolerance

__all__ = ["SimulatorOptions", "LiveObsOptions", "RuntimeConfig"]


@dataclass(frozen=True, slots=True)
class LiveObsOptions:
    """Knobs for the serving runtime's live telemetry plane.

    The default is disabled and zero-cost: the server gets the shared
    no-op flight recorder, no SLO tracker and no exporter thread (the
    ``metrics``/``health`` wire verbs still answer — the ``serve.*``
    counter registry is part of the server itself, not of this layer).
    ``enabled=True`` turns on the flight recorder and the SLO tracker;
    ``snapshot_path`` additionally starts the periodic JSONL snapshot
    exporter.  See :mod:`repro.obs.live`.
    """

    #: master switch for the flight recorder + SLO tracker + exporter
    enabled: bool = False
    #: when set (and enabled), append one JSONL metrics snapshot here
    #: every ``snapshot_interval_s``
    snapshot_path: str | None = None
    #: seconds between periodic snapshots
    snapshot_interval_s: float = 5.0
    #: ring capacity of the flight recorder (last N serve events)
    flight_capacity: int = 256
    #: when set, the flight recorder dumps here on shutdown/crash
    flight_dump_path: str | None = None
    #: latency objective: at most ``slo_latency_budget`` of requests may
    #: take longer than this many seconds
    slo_latency_target_s: float = 60.0
    slo_latency_budget: float = 0.05
    #: shed objective: at most this fraction of admissions may be shed
    #: for load (queue-full / shutting-down)
    slo_shed_budget: float = 0.05
    #: sliding event-count windows for burn-rate alerting (short = fast
    #: signal, long = sustained signal; both must burn to alert)
    slo_short_window: int = 32
    slo_long_window: int = 256
    #: burn-rate (error rate / budget) that fires an alert
    slo_burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.snapshot_interval_s <= 0:
            raise ValueError(
                f"snapshot_interval_s must be > 0, "
                f"got {self.snapshot_interval_s}"
            )
        if self.flight_capacity < 1:
            raise ValueError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )

    def build_slo_tracker(self):
        """A :class:`~repro.obs.live.SloTracker` with these objectives."""
        from repro.obs.live import SloTracker

        return SloTracker(
            latency_target_s=self.slo_latency_target_s,
            latency_budget=self.slo_latency_budget,
            shed_budget=self.slo_shed_budget,
            short_window=self.slo_short_window,
            long_window=self.slo_long_window,
            burn_threshold=self.slo_burn_threshold,
        )

    def build_flight_recorder(self, *, wall_clock=None):
        """A :class:`~repro.obs.live.FlightRecorder` (the shared null
        recorder when disabled).

        ``wall_clock`` overrides the dump-header timestamp source — the
        serving runtime passes its own injected clock through, so a
        simulated run's flight dump carries virtual time.
        """
        from repro.obs.live import NULL_FLIGHT, FlightRecorder

        if not self.enabled:
            return NULL_FLIGHT
        return FlightRecorder(self.flight_capacity, wall_clock=wall_clock)


@dataclass(frozen=True, slots=True)
class SimulatorOptions:
    """Tuning bundle for :class:`~repro.execsim.simulator.ExecutionSimulator`.

    Collects what used to be a growing keyword list into one value:
    ``ExecutionSimulator(cluster, options=SimulatorOptions(num_procs=8))``.
    Field defaults match the simulator's historical keyword defaults, so
    ``SimulatorOptions()`` is behavior-identical to passing nothing.
    """

    #: processors to simulate (``None``: every node in the cluster)
    num_procs: int | None = None
    #: communication/compute cost model (``None``: the paper-fit default)
    cost_model: Any = None
    #: relative per-processor capacity weights for capacity-aware
    #: partitioning (``None``: homogeneous)
    capacities: Any = None
    #: multiplier on modeled repartitioning seconds
    partition_time_scale: float = 1.0
    #: ``None`` auto-enables recovery when the cluster carries failures;
    #: a :class:`~repro.resilience.recovery.FaultTolerance` tunes it;
    #: ``False`` disables recovery entirely
    fault_tolerance: Any = None
    #: reuse workload/unit arrays across regrid intervals (bit-identical
    #: to full recomputation; disable only to measure the benefit)
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.partition_time_scale < 0:
            raise ValueError(
                f"partition_time_scale must be >= 0, "
                f"got {self.partition_time_scale}"
            )


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """The one composing entry point for runtime configuration.

    Bundles the failure detector lease (:class:`DetectorConfig`), the
    message-center link policy (:class:`DeliveryPolicy`), the checkpoint
    cost model (:class:`CheckpointCostModel`) and the simulator tuning
    (:class:`SimulatorOptions`), plus the recovery knobs that previously
    lived only on :class:`FaultTolerance`.  Factory methods build the
    concrete runtime objects so the pieces stay mutually consistent —
    e.g. the simulator built here replays failures with exactly the
    detector lease the agent layer polls with.
    """

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    delivery: DeliveryPolicy = field(default_factory=DeliveryPolicy)
    checkpoint: CheckpointCostModel = field(default_factory=CheckpointCostModel)
    simulator: SimulatorOptions = field(default_factory=SimulatorOptions)
    live_obs: LiveObsOptions = field(default_factory=LiveObsOptions)
    #: recovery attempts tolerated within one regrid interval before a
    #: run is declared livelocked
    max_recoveries_per_interval: int = 32
    #: when set, checkpoints are persisted crash-consistently here
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_recoveries_per_interval < 1:
            raise ValueError(
                f"max_recoveries_per_interval must be >= 1, "
                f"got {self.max_recoveries_per_interval}"
            )

    # -- factories ---------------------------------------------------------------

    def fault_tolerance(self) -> FaultTolerance:
        """The composed :class:`FaultTolerance` bundle for this config."""
        return FaultTolerance(
            detector=self.detector,
            checkpoint=self.checkpoint,
            max_recoveries_per_interval=self.max_recoveries_per_interval,
            checkpoint_dir=self.checkpoint_dir,
        )

    def simulator_options(self) -> SimulatorOptions:
        """Simulator options with this config's fault tolerance folded in.

        An explicit ``simulator.fault_tolerance`` wins; the default
        ``None`` is replaced by the composed bundle so failure replay
        uses this config's detector lease and checkpoint model.
        """
        if self.simulator.fault_tolerance is not None:
            return self.simulator
        return replace(self.simulator, fault_tolerance=self.fault_tolerance())

    def build_simulator(self, cluster):
        """An :class:`~repro.execsim.simulator.ExecutionSimulator` on
        ``cluster`` configured by this bundle."""
        from repro.execsim.simulator import ExecutionSimulator

        return ExecutionSimulator(cluster, options=self.simulator_options())

    def build_message_center(self, **kwargs):
        """A :class:`~repro.agents.message_center.MessageCenter` using
        this config's :class:`DeliveryPolicy`."""
        from repro.agents.message_center import MessageCenter

        return MessageCenter(self.delivery, **kwargs)

    def build_detector(self, cluster, **kwargs):
        """A :class:`~repro.resilience.detector.FailureDetector` on
        ``cluster`` using this config's :class:`DetectorConfig`."""
        from repro.resilience.detector import FailureDetector

        return FailureDetector(cluster, self.detector, **kwargs)

    def build_server(self, **kwargs):
        """A :class:`~repro.serve.server.ScenarioServer` whose retry
        backoff ladder comes from this config's :class:`DeliveryPolicy`
        and whose live telemetry plane follows :attr:`live_obs`."""
        from repro.serve.server import ScenarioServer

        kwargs.setdefault("retry_policy", self.delivery)
        kwargs.setdefault("live_obs", self.live_obs)
        return ScenarioServer(**kwargs)
