"""The stable public API facade.

Everything a downstream consumer should import lives here, re-exported
under one flat namespace with compatibility guarantees:

- **runtime** — :class:`Pragma` / :class:`PragmaRuntime` (the paper's
  adaptive runtime) and :class:`MetaPartitioner` (octant-driven
  partitioner selection),
- **scenarios** — :class:`Scenario`, :class:`SweepRunner` and
  :func:`run_sweep` (the batch sweep engine),
- **serving** — :class:`ServerHandle` / :class:`ScenarioServer` (the
  long-running scenario-serving runtime, ``python -m repro serve``),
- **configuration** — :class:`RuntimeConfig` (one composed entry point
  over the detector, delivery, checkpoint and simulator knobs),
  :class:`SimulatorOptions` and :class:`LiveObsOptions` (the serving
  runtime's live telemetry plane),
- **observability** — :class:`HealthStatus` (the ``health`` verb's
  liveness/readiness document).

The exact surface is snapshotted in ``tests/golden/api_surface.json``;
``tests/test_api_surface.py`` fails on any drift, so additions and
removals here are always explicit, reviewed changes.  Internal modules
(``repro.execsim``, ``repro.agents``, ...) remain importable but carry
no stability promise; prefer this facade::

    from repro.api import Pragma, run_sweep, ServerHandle
"""

from repro.config import LiveObsOptions, RuntimeConfig, SimulatorOptions
from repro.core import MetaPartitioner, PragmaRuntime
from repro.obs.live import HealthStatus
from repro.serve import ScenarioServer, ServerHandle
from repro.sweep import Scenario, SweepRunner, run_sweep

#: the paper's name for the runtime — alias of :class:`PragmaRuntime`
Pragma = PragmaRuntime

__all__ = [
    "Pragma",
    "PragmaRuntime",
    "MetaPartitioner",
    "Scenario",
    "SweepRunner",
    "run_sweep",
    "ScenarioServer",
    "ServerHandle",
    "RuntimeConfig",
    "SimulatorOptions",
    "LiveObsOptions",
    "HealthStatus",
]
