"""Table 2 — Recommendations for mapping octants onto partitioning schemes.

Reproduced by querying the default policy knowledge base for every octant
(the associative interface agents use at runtime).  See
:mod:`repro.experiments.table2`.
"""

from repro.experiments import table2
from repro.policy import Octant, TABLE2_RECOMMENDATIONS


def test_table2_policy_recommendations(benchmark):
    actions = benchmark(table2.run)
    print("\n" + table2.render(actions))

    for octant in Octant:
        assert actions[octant]["partitioners"] == table2.PAPER[octant.value]
        assert actions[octant]["partitioner"] == table2.PAPER[octant.value][0]
        assert TABLE2_RECOMMENDATIONS[octant] == table2.PAPER[octant.value]
