"""Figure 1 — The CATALINA architecture, exercised end to end.

Drives spec → template → ADM → CAs → Message Center through an injected
node failure and verifies each architectural element did its job.  See
:mod:`repro.experiments.fig1`.
"""

from repro.experiments import fig1


def test_fig1_catalina_architecture(benchmark):
    env = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    print("\n" + fig1.render(env))

    # Every architectural element participated.
    assert env.template.name == "performance-managed"
    assert env.done, "application must complete despite the failure"
    assert env.components[0].migrations >= 1, "ADM must migrate off node 0"
    assert env.components[0].node_id != 0
    assert any(agent.events_published > 0 for agent in env.agents)
    assert env.message_center.delivered_count > 0
    assert len(env.adm.decisions) >= 1
