"""Ablation — one-shot capacities (the paper) vs periodic refresh.

Section 4.6: "Relative capacities of the processors are calculated only
once before the start of the simulation in this experiment."  The paper
expects dynamics to make refresh matter.  On a *drifting* background load
(random-walk pattern), capacities refreshed mid-run should beat the
one-shot estimate; on a *static* heterogeneous load the two should tie.
"""


from repro.apps.loadgen import LoadPattern
from repro.config import SimulatorOptions
from repro.core import CapacityCalculator, CapacityWeights
from repro.execsim import ExecutionSimulator, StaticSelector
from repro.gridsys import linux_cluster
from repro.monitoring import ResourceMonitor
from repro.partitioners import HeterogeneousPartitioner

WEIGHTS = CapacityWeights(cpu=0.8, memory=0.05, bandwidth=0.15)


def _runtime_with_capacities(cluster, trace, capacities, num_procs):
    sim = ExecutionSimulator(cluster, num_procs=num_procs,
                             options=SimulatorOptions(capacities=capacities))
    return sim.run(
        trace, StaticSelector(HeterogeneousPartitioner(), granularity=2)
    ).total_runtime


def run_comparison(trace, pattern, seed):
    cluster = linux_cluster(16, load_pattern=pattern, max_load=0.7, seed=seed)
    monitor = ResourceMonitor(cluster, seed=seed + 1)

    # One-shot: capacities from the pre-run warm-up only.
    monitor.sample_range(0.0, 32.0, 1.0)
    once = CapacityCalculator(monitor, WEIGHTS).relative_capacities()
    rt_once = _runtime_with_capacities(cluster, trace, once, 16)

    # Refreshed: capacities from monitoring concurrent with the run window.
    monitor.sample_range(33.0, 1500.0, 25.0)
    refreshed = CapacityCalculator(
        monitor, WEIGHTS, window=48
    ).relative_capacities()
    rt_refresh = _runtime_with_capacities(cluster, trace, refreshed, 16)
    return rt_once, rt_refresh


def test_ablation_capacity_refresh(rm3d_trace, benchmark):
    def run_all():
        return {
            "random-walk": run_comparison(rm3d_trace, LoadPattern.RANDOM_WALK, 50),
            "stepped": run_comparison(rm3d_trace, LoadPattern.STEPPED, 60),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAblation — capacity refresh vs one-shot")
    for pattern, (rt_once, rt_refresh) in results.items():
        delta = 100.0 * (rt_once - rt_refresh) / rt_once
        print(f"  {pattern:>12}: once={rt_once:8.1f}s "
              f"refreshed={rt_refresh:8.1f}s  refresh gain={delta:5.1f}%")

    # Static heterogeneity: refresh cannot matter much either way.
    rt_once, rt_refresh = results["stepped"]
    assert abs(rt_once - rt_refresh) / rt_once < 0.08
    # Drifting load: the longer observation window must not hurt much and
    # typically helps (the paper's stated expectation).
    rt_once, rt_refresh = results["random-walk"]
    assert rt_refresh < rt_once * 1.05
