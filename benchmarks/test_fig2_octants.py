"""Figure 2 — The octant approach for characterizing application state.

Synthesizes a grid hierarchy for each corner of the state cube,
classifies it, and checks each lands in its octant.  See
:mod:`repro.experiments.fig2`.
"""

from repro.experiments import fig2
from repro.policy import OctantAxes


def test_fig2_octant_cube(benchmark):
    results = benchmark(fig2.run)
    print("\n" + fig2.render(results))

    failures = []
    for (scattered, moving, thin), (octant, _sig) in results.items():
        expected = OctantAxes(
            scattered=scattered, high_dynamics=moving, comm_dominated=thin
        ).octant()
        if octant is not expected:
            failures.append(((scattered, moving, thin), octant, expected))
    assert not failures, f"corner misclassifications: {failures}"
    assert {o.value for o, _ in results.values()} == {
        "I", "II", "III", "IV", "V", "VI", "VII", "VIII"
    }
