"""Figure 4 — System-sensitive adaptive AMR partitioning data flow.

Drives monitoring → capacity calculation → heterogeneous partitioning on
a loaded 8-node cluster and verifies each arrow of the figure.  See
:mod:`repro.experiments.fig4`.
"""

import numpy as np
import pytest

from repro.experiments import fig4


def test_fig4_system_sensitive_flow(rm3d_trace, benchmark):
    monitor, capacities, partition = benchmark.pedantic(
        fig4.run, args=(rm3d_trace,), rounds=1, iterations=1
    )
    print("\n" + fig4.render((monitor, capacities, partition)))

    # Monitoring arrow: all three attributes measured on every node.
    for n in range(8):
        st = monitor.current(n)
        assert 0 <= st.cpu <= 1 and st.memory > 0 and st.bandwidth > 0
    # Capacity arrow: normalized, and the loaded tail gets less.
    assert capacities.sum() == pytest.approx(1.0)
    assert capacities[0] > capacities[7]
    # Partitioning arrow: load shares follow capacities.
    loads = partition.proc_loads()
    shares = loads / loads.sum()
    corr = np.corrcoef(capacities, shares)[0, 1]
    assert corr > 0.9, f"load shares must track capacities (corr={corr:.2f})"
