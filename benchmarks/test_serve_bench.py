"""Serving-runtime perf snapshot — emits ``BENCH_serve.json`` at the repo root.

Four sections, wired into the CI benchdiff gate:

- **dedup** (deterministic, gated): 120 requests over 6 distinct keys
  submitted against a parked worker pool must coalesce to 6 executions —
  a ≥0.9 dedup hit rate is the acceptance bar (this layout gives 0.95).
- **saturation** (deterministic, gated): offering 2× the queue bound in
  distinct requests sheds exactly the overflow with reason
  ``queue-full`` — and every shed handle is terminal immediately (shed,
  never hung).
- **worker_death** (deterministic, gated): with a death injected into
  every job's first attempt (both the before-run and after-run windows),
  zero jobs are lost and zero are double-committed.
- **wall_clock** (machine-dependent, ignored by benchdiff's ``*wall*``
  glob): throughput and latency percentiles at N concurrent clients.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.serve import ScenarioServer
from repro.serve.queue import SHED_QUEUE_FULL, TERMINAL_STATUSES
from repro.sweep.scenario import FunctionScenario, register, unregister

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_serve.json"

WORKERS = 4
QUEUE_CAPACITY = 32
MAX_BATCH = 4


def _work(ctx):
    n = ctx.params["n"]
    return {"sum_sq": sum(k * k for k in range(n)), "n": n}


def _with_scenario(fn):
    register(FunctionScenario("bench-serve", _work, {"n": 100}),
             replace=True)
    try:
        return fn()
    finally:
        unregister("bench-serve")


def _server(**kwargs):
    kwargs.setdefault("workers", WORKERS)
    kwargs.setdefault("queue_capacity", QUEUE_CAPACITY)
    kwargs.setdefault("max_batch", MAX_BATCH)
    kwargs.setdefault("scenario_modules", ())
    return ScenarioServer(**kwargs)


def _bench_dedup():
    """120 pending requests over 6 keys coalesce onto 6 executions."""
    requests, distinct = 120, 6
    server = _server(start=False)
    handles = [
        server.submit("bench-serve", {"n": 100 + (i % distinct)})
        for i in range(requests)
    ]
    counters = server.stats()["counters"]
    server.start()
    results = [h.result(timeout=30) for h in handles]
    server.shutdown()
    final = server.stats()["counters"]
    hit_rate = counters.get("dedup_hits", 0) / requests
    assert all(
        r["n"] == 100 + (i % distinct) for i, r in enumerate(results)
    )
    assert final["executions"] == distinct
    assert hit_rate >= 0.9, f"dedup hit rate {hit_rate} below the 0.9 bar"
    return {
        "requests": requests,
        "distinct_keys": distinct,
        "executions": final["executions"],
        "dedup_hits": counters.get("dedup_hits", 0),
        "hit_rate": hit_rate,
    }


def _bench_saturation():
    """2x the queue bound in distinct requests: exact, immediate sheds."""
    offered = 2 * QUEUE_CAPACITY
    server = _server(start=False)
    handles = [
        server.submit("bench-serve", {"n": 200 + i}) for i in range(offered)
    ]
    shed = [h for h in handles if h.status == "shed"]
    hung = [h for h in handles if not (h.done or h.status == "queued")]
    assert len(shed) == offered - QUEUE_CAPACITY
    assert all(h.record()["error"] == SHED_QUEUE_FULL for h in shed)
    assert not hung, "requests beyond the bound must shed, never hang"
    server.start()
    admitted = [h for h in handles if h.status != "shed"]
    done = [h for h in admitted if h.result(timeout=30)["n"] >= 200]
    server.shutdown()
    return {
        "queue_capacity": QUEUE_CAPACITY,
        "offered": offered,
        "admitted": len(admitted),
        "completed": len(done),
        "shed": len(shed),
        "shed_rate": len(shed) / offered,
        "hung": len(hung),
    }


def _bench_worker_death():
    """A death in every job's first attempt: nothing lost, nothing doubled."""
    jobs = 12
    first_attempt_seen: set[int] = set()

    def injector(job, attempt):
        if job.seq not in first_attempt_seen:
            first_attempt_seen.add(job.seq)
            # alternate the two windows where delivery guarantees differ
            return "before" if job.seq % 2 else "after"
        return None

    commits: dict[str, int] = {}
    commit_lock = threading.Lock()

    def listener(job, kind, t, attrs):
        if kind in TERMINAL_STATUSES:
            with commit_lock:
                commits[f"job-{job.seq}"] = (
                    commits.get(f"job-{job.seq}", 0) + 1
                )

    server = _server(death_injector=injector)
    server.add_listener(listener)
    handles = [
        server.submit("bench-serve", {"n": 300 + i}) for i in range(jobs)
    ]
    results = [h.result(timeout=30) for h in handles]
    stats = server.stats()["counters"]
    server.shutdown()
    lost = sum(1 for h in handles if h.record()["status"] != "done")
    double_committed = sum(1 for n in commits.values() if n > 1)
    assert len(results) == jobs
    assert lost == 0, f"{lost} jobs lost under worker-death injection"
    assert double_committed == 0, "a job committed its terminal state twice"
    assert stats["completed"] == jobs
    return {
        "jobs": jobs,
        "deaths_injected": len(first_attempt_seen),
        "retries": sum(h.record()["retries"] for h in handles),
        "lost": lost,
        "double_committed": double_committed,
        "completed": stats["completed"],
    }


def _bench_wall_clock():
    """Throughput/latency at N concurrent clients (machine-dependent)."""
    clients, per_client = 8, 25
    server = _server()
    all_handles: list[list] = [[] for _ in range(clients)]

    def client(cid: int) -> None:
        for i in range(per_client):
            all_handles[cid].append(
                server.submit("bench-serve", {"n": 400 + cid * per_client + i})
            )

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    server.drain(timeout=60)
    wall_s = time.perf_counter() - t0
    waits = sorted(
        h.record()["wait_s"]
        for handles in all_handles for h in handles
        if h.record()["wait_s"] is not None
    )
    server.shutdown()
    total = clients * per_client

    def pct(p: float) -> float:
        return waits[min(len(waits) - 1, int(p * len(waits)))]

    return {
        "clients": clients,
        "requests": total,
        "wall_s": wall_s,
        "throughput_jobs_per_s": total / max(wall_s, 1e-9),
        "latency_p50_s": pct(0.50),
        "latency_p95_s": pct(0.95),
        "latency_max_s": waits[-1],
    }


def test_serve_snapshot():
    def run():
        snapshot = {
            "bench": "serve",
            "config": {
                "workers": WORKERS,
                "queue_capacity": QUEUE_CAPACITY,
                "max_batch": MAX_BATCH,
            },
            "dedup": _bench_dedup(),
            "saturation": _bench_saturation(),
            "worker_death": _bench_worker_death(),
            "wall_clock": _bench_wall_clock(),
        }
        SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")
        return snapshot

    snapshot = _with_scenario(run)
    assert snapshot["dedup"]["hit_rate"] >= 0.9
    assert snapshot["saturation"]["shed"] == QUEUE_CAPACITY
    assert snapshot["saturation"]["hung"] == 0
    assert snapshot["worker_death"]["lost"] == 0
    assert snapshot["worker_death"]["double_committed"] == 0
