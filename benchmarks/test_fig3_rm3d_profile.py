"""Figure 3 — RM3D profile views at sampled time-steps.

Regenerates the figure's content as refinement profiles along the
shock-propagation axis and asserts the phase structure the renderings
illustrate.  See :mod:`repro.experiments.fig3`.
"""

from repro.experiments import fig3


def test_fig3_rm3d_profiles(rm3d_trace, benchmark):
    data = benchmark.pedantic(fig3.run, args=(rm3d_trace,), rounds=1,
                              iterations=1)
    print("\n" + fig3.render(data))

    # Phase structure assertions mirroring the renderings:
    # early interface is localized around x=40 (of 128)
    p5 = data[5]["x_profile"]
    assert p5[26:46].max() > 0.5 and p5[70:].max() == 0.0
    # the shock snapshot has refinement ahead of the interface region
    assert data[25]["x_profile"][:24].max() > 0.0
    # the mixing zone (t=106) spreads over more x than the interface
    occ = lambda p: (p > 0.01).sum()
    assert occ(data[106]["x_profile"]) > occ(data[5]["x_profile"])
    # re-shock re-energizes: more patches than the quiet compressed layer
    assert data[162]["patches"] > data[174]["patches"]
    # every sampled snapshot is refined; the strong-feature phases reach
    # the full 3 refined levels (weak shocks refine shallower by design)
    assert all(d["levels"] >= 2 for d in data.values())
    assert sum(d["levels"] == 4 for d in data.values()) >= 4
