"""Ablation — NWS-style dynamic predictor selection vs fixed predictors.

DESIGN.md calls out the forecaster ensemble as a design choice: the
dynamic selection should never be much worse than the best fixed
predictor on any workload shape, while every fixed predictor has a
workload that defeats it.
"""

import numpy as np

from repro.monitoring import (
    ExponentialSmoothing,
    ForecasterEnsemble,
    LastValue,
    RunningMean,
    SlidingMedian,
    SlidingWindowMean,
)
from repro.util.rng import ensure_rng


def _series(kind: str, n: int = 400, seed: int = 0) -> np.ndarray:
    rng = ensure_rng(seed)
    t = np.arange(n, dtype=float)
    if kind == "stationary-noisy":
        return 0.6 + 0.08 * rng.standard_normal(n)
    if kind == "spiky":
        base = 0.7 + 0.02 * rng.standard_normal(n)
        spikes = rng.random(n) < 0.06
        base[spikes] = 0.05
        return base
    if kind == "level-shift":
        return np.where(t < n / 2, 0.9, 0.3) + 0.03 * rng.standard_normal(n)
    if kind == "trending":
        return 0.2 + 0.6 * t / n + 0.03 * rng.standard_normal(n)
    raise ValueError(kind)


def _mae(predictor_factory, series: np.ndarray) -> float:
    p = predictor_factory()
    errs = []
    for i, v in enumerate(series):
        if i > 0:
            errs.append(abs(p.predict() - v))
        p.update(v)
    return float(np.mean(errs))


FIXED = {
    "last-value": LastValue,
    "running-mean": RunningMean,
    "window-mean(10)": lambda: SlidingWindowMean(10),
    "median(10)": lambda: SlidingMedian(10),
    "exp(0.3)": lambda: ExponentialSmoothing(0.3),
}


def evaluate_all():
    kinds = ("stationary-noisy", "spiky", "level-shift", "trending")
    table = {}
    for kind in kinds:
        series = _series(kind)
        row = {name: _mae(f, series) for name, f in FIXED.items()}
        row["ensemble"] = _mae(ForecasterEnsemble, series)
        table[kind] = row
    return table


def test_ablation_dynamic_predictor_selection(benchmark):
    table = benchmark(evaluate_all)

    print("\nAblation — forecaster MAE per workload shape")
    names = list(next(iter(table.values())))
    print(f"{'workload':>18} " + " ".join(f"{n:>16}" for n in names))
    for kind, row in table.items():
        print(f"{kind:>18} " + " ".join(f"{row[n]:>16.4f}" for n in names))

    for kind, row in table.items():
        fixed_errors = [v for k, v in row.items() if k != "ensemble"]
        best_fixed = min(fixed_errors)
        worst_fixed = max(fixed_errors)
        # Dynamic selection tracks the best fixed predictor within 50 %
        # and is always far from the worst.
        assert row["ensemble"] <= best_fixed * 1.5 + 1e-6, kind
        assert row["ensemble"] < worst_fixed, kind
