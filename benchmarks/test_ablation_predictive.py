"""Ablation — predictive (PF-based) tie-breaking vs first recommendation.

Table 2 lists several acceptable partitioners for half the octants.  The
plain meta-partitioner takes the first; the predictive selector
trial-partitions every candidate and composes a performance-function
prediction of the interval time (research challenge 1 of the paper).
Prediction costs real partitioning work per regrid, so the ablation
checks the decision quality actually pays for it.
"""

from repro.core import MetaPartitioner, PredictiveSelector
from repro.execsim import ExecutionSimulator
from repro.gridsys import sp2_blue_horizon


def run_both(trace):
    cluster = sp2_blue_horizon(64)
    sim = ExecutionSimulator(cluster, num_procs=64)
    first = sim.run(trace, MetaPartitioner())
    predictive_selector = PredictiveSelector(cluster=cluster, num_procs=64)
    predictive = sim.run(trace, predictive_selector)
    return first, predictive, predictive_selector


def test_ablation_predictive_selection(rm3d_trace, benchmark):
    first, predictive, selector = benchmark.pedantic(
        run_both, args=(rm3d_trace,), rounds=1, iterations=1
    )

    print("\nAblation — candidate selection within the Table 2 policy")
    print(f"  first recommendation: rt={first.total_runtime:7.1f}s "
          f"usage={first.partitioner_usage()}")
    print(f"  PF-predictive       : rt={predictive.total_runtime:7.1f}s "
          f"usage={predictive.partitioner_usage()}")
    print(f"  tie-breaks predicted: {len(selector.predictions)}")

    # The predictive selector must exploit the wider candidate set ...
    assert len(predictive.partitioner_usage()) >= len(first.partitioner_usage())
    # ... and never lose more than a few percent to the simple rule.
    assert predictive.total_runtime < first.total_runtime * 1.05
