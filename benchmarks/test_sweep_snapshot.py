"""Sweep engine perf snapshot — emits ``BENCH_sweep.json`` at the repo root.

Runs the registered experiment scenarios through the sweep engine twice
against a fresh cache: a cold pass (everything executes, ``--jobs 2``)
and a warm pass (everything resolves from the content-addressed cache,
no worker is spawned).  The warm pass must complete in under 10% of the
cold wall-clock — the sweep cache's acceptance bar — and both passes
must produce bit-identical task results.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sweep import run_sweep

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_sweep.json"


def test_sweep_cold_warm_snapshot(tmp_path):
    cold = run_sweep(tags=("experiment",), jobs=2, cache_dir=tmp_path)
    warm = run_sweep(tags=("experiment",), jobs=2, cache_dir=tmp_path)

    assert cold.ok and warm.ok
    assert cold.cache_misses == len(cold.tasks) > 0
    assert warm.cache_hits == len(warm.tasks) == len(cold.tasks)
    for a, b in zip(cold.tasks, warm.tasks):
        assert json.dumps(a.result, sort_keys=True) == json.dumps(
            b.result, sort_keys=True
        )

    warm_frac = warm.total_wall_s / cold.total_wall_s
    snapshot = {
        "bench": "sweep",
        "scenarios": [t.name for t in cold.tasks],
        "jobs": cold.jobs,
        "wall_clock": {
            "cold_s": cold.total_wall_s,
            "warm_s": warm.total_wall_s,
            "warm_fraction_pct": 100.0 * warm_frac,
            "speedup": cold.total_wall_s / max(warm.total_wall_s, 1e-9),
        },
        "cache": {
            "cold_misses": cold.cache_misses,
            "warm_hits": warm.cache_hits,
        },
        "tasks": [
            {"name": t.name, "wall_s": t.wall_s, "cached": t.cached}
            for t in cold.tasks
        ],
    }
    SNAPSHOT_PATH.write_text(json.dumps(snapshot, indent=2) + "\n")

    assert warm_frac < 0.10, (
        f"warm sweep took {100 * warm_frac:.1f}% of cold "
        f"({warm.total_wall_s:.3f}s vs {cold.total_wall_s:.3f}s)"
    )
