"""Ablation — exact sequence partitioning (the "+SP") vs greedy splits.

The G-MISP+SP partitioner's whole reason to exist is that exact
minimal-bottleneck sequence partitioning buys measurably better balance
than the greedy fill, at a partitioning-time cost that stays negligible
next to a solver step.
"""


import numpy as np

from repro.partitioners import (
    GMISPPartitioner,
    GMISPSPPartitioner,
    build_units,
    evaluate_partition,
)


def compare(trace, num_procs=64, samples=20):
    idxs = np.linspace(0, len(trace) - 1, samples).astype(int)
    rows = []
    greedy = GMISPPartitioner()
    exact = GMISPSPPartitioner()
    for k in idxs:
        units = build_units(trace[int(k)].hierarchy, granularity=2)
        pg = greedy.partition(units, num_procs)
        pe = exact.partition(units, num_procs)
        rows.append(
            {
                "greedy_imb": evaluate_partition(pg).load_imbalance_pct,
                "exact_imb": evaluate_partition(pe).load_imbalance_pct,
                "greedy_time": pg.partition_time,
                "exact_time": pe.partition_time,
            }
        )
    return rows


def test_ablation_exact_vs_greedy_sequence_partitioning(rm3d_trace, benchmark):
    rows = benchmark.pedantic(compare, args=(rm3d_trace,), rounds=1,
                              iterations=1)
    g_imb = np.mean([r["greedy_imb"] for r in rows])
    e_imb = np.mean([r["exact_imb"] for r in rows])
    g_t = np.mean([r["greedy_time"] for r in rows])
    e_t = np.mean([r["exact_time"] for r in rows])

    print("\nAblation — sequence partitioning inside G-MISP")
    print(f"  greedy: mean imbalance {g_imb:6.2f}%  mean time {g_t * 1e3:6.2f} ms")
    print(f"  exact : mean imbalance {e_imb:6.2f}%  mean time {e_t * 1e3:6.2f} ms")

    # Exact is never worse and meaningfully better on average.
    assert all(r["exact_imb"] <= r["greedy_imb"] + 1e-6 for r in rows)
    assert e_imb < g_imb
    # The extra cost stays in the millisecond regime.
    assert e_t < 0.25
