"""Table 5 — Improvement due to system-sensitive adaptive partitioning.

"System sensitive partitioning reduced execution time by about 18% in
the case of 32 nodes"; improvement grows with processor count because
larger runs must spill onto the heavily loaded tail of the node pool.
See :mod:`repro.experiments.table5`.
"""

from repro.experiments import table5


def test_table5_system_sensitive_improvement(rm3d_trace, benchmark):
    improvements = benchmark.pedantic(table5.run, args=(rm3d_trace,),
                                      rounds=1, iterations=1)
    print("\n" + table5.render(improvements))

    vals = [improvements[n] for n in table5.PROC_COUNTS]
    # Monotone-increasing trend (small measurement jitter tolerated).
    for a, b in zip(vals, vals[1:]):
        assert b >= a - 1.5, f"improvement must grow with node count: {vals}"
    # The headline figure: ~18 % at 32 nodes.
    assert 10.0 <= improvements[32] <= 30.0
    # System-sensitivity never hurts measurably at any size.
    assert all(v > -2.0 for v in vals)
