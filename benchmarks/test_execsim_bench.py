"""Execsim benchmark snapshot — emits ``BENCH_execsim.json``.

Times the comm-cost kernel pair on synthetic adjacency problems and
replays the regrid reuse cache over the reduced RM3D trace plus a
scripted localized-adaptation trace (:mod:`repro.execsim.bench`).
Asserts the PR's acceptance floors — cost kernel >= 3x at 1e5 adjacency
pairs, nonzero reuse-hit rate on the RM3D trace — and writes the
snapshot the ``python -m repro benchdiff`` CI gate compares.  Wall and
speedup leaves use names the gate ignores; match booleans, hit rates,
and digests are gated exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.execsim.bench import run_execsim_bench

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_execsim.json"

#: acceptance floor for the cost kernel at the largest pair count
MIN_COST_SPEEDUP = 3.0


def test_execsim_bench_snapshot():
    doc = run_execsim_bench()

    gate = doc["gate"]
    assert gate["all_match"], "backend outputs diverged — differential bug"
    assert gate["largest_pairs"] >= 100_000
    assert gate["cost_speedup_at_largest"] >= MIN_COST_SPEEDUP, (
        f"cost kernel only {gate['cost_speedup_at_largest']:.1f}x "
        f"at {gate['largest_pairs']} pairs"
    )
    assert gate["reuse_hit_rate"] > 0.0, (
        "no reuse hits on the RM3D trace — the incremental path never "
        "engaged"
    )
    # the reduced RM3D trace has exactly one cold interval (the first)
    assert doc["reuse"]["rm3d"]["misses"] == 1
    # the localized trace is the favorable regime: the incremental replay
    # must not be slower than full rebuilds there
    loc = doc["reuse"]["localized"]
    assert loc["wall_incremental_s"] < loc["wall_full_s"], (
        f"incremental replay ({loc['wall_incremental_s']:.3f}s) slower "
        f"than full rebuilds ({loc['wall_full_s']:.3f}s) on the "
        "localized trace"
    )

    SNAPSHOT_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
