"""Chaos-recovery benchmark — emits ``BENCH_chaos.json`` at the repo root.

Runs the chaos harness (:mod:`repro.resilience.chaos`): seeded Poisson
failure schedules swept through the fault-tolerant execution simulator on
the reduced quickstart scenario, plus a lossy-link soak of the CATALINA
control network.  Asserts the recovery invariants —

1. no coarse-step work lost despite rollbacks,
2. every patch owned by a detected-live node,
3. recovery lag bounded by detection latency + slack,
4. the agent-layer application completes over a lossy message center —

then runs the gray-failure chaos matrix (fault type × intensity:
crash / degraded / flapping / partition / checkpoint-corruption cells,
each gated on its own invariants) and writes both documents into the
machine-readable snapshot so future PRs have a resilience baseline to
compare against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.resilience.chaos import (
    ChaosConfig,
    MatrixConfig,
    run_chaos,
    run_chaos_matrix,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_chaos.json"


@pytest.mark.chaos
def test_chaos_recovery_invariants():
    config = ChaosConfig(
        num_procs=16,
        num_coarse_steps=96,
        mtbf=300.0,
        mttr=40.0,
        seeds=(0, 1, 2),
        loss_rate=0.05,
    )
    t0 = time.perf_counter()
    result = run_chaos(config)
    wall_s = time.perf_counter() - t0

    # Invariant 1-3 per replay.
    for run in result["runs"]:
        inv = run["invariants"]
        assert inv["no_work_lost"], (
            f"seed {run['seed']}: {run['executed_steps']}/"
            f"{run['planned_steps']} coarse steps committed"
        )
        assert inv["owners_live"], (
            f"seed {run['seed']}: a patch was owned by a dead processor"
        )
        assert inv["lag_bounded"], (
            f"seed {run['seed']}: recovery lag {run['max_recovery_lag']:.2f}s "
            f"exceeds bound {run['recovery_lag_bound']:.2f}s"
        )

    # The sweep must actually have exercised the recovery path.
    assert result["aggregate"]["total_recoveries"] >= 1
    assert result["aggregate"]["all_invariants_hold"]

    # Invariant 4: the control network completes under a lossy link.
    assert result["messaging_soak"], "soak did not run"
    for soak in result["messaging_soak"]:
        assert soak["completed"], f"soak seed {soak['seed']} did not finish"
        assert soak["delivered"] > 0

    # Gray-failure matrix: every (fault type × intensity) cell must hold
    # its invariants — degraded nodes down-weighted but never evacuated,
    # flap rollbacks bounded by the eviction hysteresis, partitioned sends
    # dead-lettered exactly, corrupt checkpoints walked back and counted.
    t0 = time.perf_counter()
    matrix = run_chaos_matrix(MatrixConfig())
    matrix_wall_s = time.perf_counter() - t0
    for cell in matrix["cells"]:
        failed = [k for k, ok in cell["invariants"].items() if not ok]
        assert not failed, (
            f"{cell['fault']}/{cell['intensity']}: violated {failed}"
        )
    assert matrix["aggregate"]["all_invariants_hold"]
    assert matrix["aggregate"]["cells"] == 10

    snapshot = {
        "bench": "chaos_recovery",
        "wall_clock_s": wall_s,
        "matrix_wall_clock_s": matrix_wall_s,
        "matrix": matrix,
        **result,
    }
    SNAPSHOT_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {SNAPSHOT_PATH}")
    print(json.dumps(result["aggregate"], indent=2))
    print(json.dumps(matrix["aggregate"], indent=2))
