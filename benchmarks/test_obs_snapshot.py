"""Observability perf snapshot — emits ``BENCH_obs.json`` at the repo root.

Two jobs:

1. Measure the observability layer's own overhead: the quickstart-sized
   adaptive run is timed with the null registry (the default) and again
   inside a collection window.  The disabled path must stay within noise;
   the enabled path is reported, not asserted (collection is allowed to
   cost something).
2. Measure the serving runtime's live-telemetry overhead: the shed-path
   submit cost (cheap, deterministic, no execution) with live obs
   enabled vs the zero-cost disabled default.  The machine-independent
   gate leaf ``live_telemetry.overhead_ok`` asserts the ratio stays
   within a generous bound; the raw timings live under ``wall_clock``.
3. Write a ``BENCH_obs.json`` perf snapshot — per-phase simulated
   seconds with tail quantiles, timeline summary, anomaly alerts,
   partitioner switching, message counters and sweep task-seconds
   quantiles — the machine-readable baseline the ``python -m repro
   benchdiff`` CI gate compares against.  Simulated-seconds sections are
   machine-independent (the report runs under the deterministic
   partitioner cost model); wall-clock sections live under keys the
   gate's default ignore rules skip.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs
from repro.obs.report import collect_run_report, quickstart_scenario
from repro.sweep import run_sweep

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_obs.json"

#: fast, trace-free scenarios the sweep section executes for the
#: ``sweep.task_seconds`` histogram (a few observations for quantiles)
SWEEP_SCENARIOS = ("fig1", "fig2", "table1", "table2")


#: shed-path submits per timing repeat for the live-telemetry overhead
#: measurement (unknown scenario: no queueing, no execution, so the
#: number isolates the submit path's own bookkeeping)
_SHED_SUBMITS = 400

#: enabled/disabled submit-cost ratio the gate tolerates — generous on
#: purpose: this guards against accidental heavy work on the hot path
#: (an exporter flush, an unbounded scan), not against counter costs
_LIVE_OVERHEAD_RATIO_MAX = 5.0


def _median_shed_submit_s(server, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(_SHED_SUBMITS):
            server.submit("no-such-scenario")
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def _live_telemetry_overhead() -> dict:
    from repro.config import LiveObsOptions
    from repro.serve.server import ScenarioServer

    base = ScenarioServer(workers=1, start=False, scenario_modules=())
    live = ScenarioServer(
        workers=1, start=False, scenario_modules=(),
        live_obs=LiveObsOptions(enabled=True),
    )
    try:
        _median_shed_submit_s(base, repeats=1)  # warm-up
        disabled_s = _median_shed_submit_s(base)
        enabled_s = _median_shed_submit_s(live)
    finally:
        base.shutdown()
        live.shutdown()
    ratio = enabled_s / disabled_s if disabled_s > 0 else 1.0
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "ratio": ratio,
        "ok": ratio < _LIVE_OVERHEAD_RATIO_MAX,
    }


def _timed_adaptive_run():
    app, policy, runtime = quickstart_scenario()
    trace = runtime.characterize(app, policy, 160)
    t0 = time.perf_counter()
    runtime.run_adaptive(trace, compare_with=("G-MISP+SP", "SFC"))
    return time.perf_counter() - t0


def _histograms_by_phase(doc: dict, name: str) -> dict:
    rows = doc["metrics"]["histograms"].get(name, [])
    out = {}
    for row in rows:
        key = row["labels"].get("phase", "all")
        out[key] = row["value"]
    return out


def test_obs_overhead_and_snapshot(tmp_path):
    obs.disable()
    # Warm-up once (partitioner instance caches, numpy JIT-ish costs).
    _timed_adaptive_run()
    disabled_s = min(_timed_adaptive_run() for _ in range(3))
    with obs.collect():
        enabled_s = min(_timed_adaptive_run() for _ in range(3))

    t0 = time.perf_counter()
    report = collect_run_report()
    report_wall_s = time.perf_counter() - t0
    doc = report.to_dict()

    # A small uncached sweep under its own window feeds the
    # sweep.task_seconds histogram (wall-clock, so reported under an
    # ignored key).
    with obs.collect() as sweep_window:
        for name in SWEEP_SCENARIOS:
            result = run_sweep(
                name, jobs=1, use_cache=False, cache_dir=tmp_path
            )
            assert result.ok and result.tasks
    task_seconds = sweep_window.registry.histogram(
        "sweep.task_seconds"
    ).summary()

    live = _live_telemetry_overhead()

    phase_hists = _histograms_by_phase(doc, "execsim.phase_seconds")
    snapshot = {
        "bench": "obs_snapshot",
        "scenario": doc["scenario"],
        "wall_clock": {
            "adaptive_run_disabled_s": disabled_s,
            "adaptive_run_enabled_s": enabled_s,
            "enabled_overhead_pct": (
                100.0 * (enabled_s - disabled_s) / disabled_s
            ),
            "full_report_s": report_wall_s,
            "sweep_task_seconds": task_seconds,
            "live_submit_shed_disabled_s": live["disabled_s"],
            "live_submit_shed_enabled_s": live["enabled_s"],
            "live_overhead_ratio": live["ratio"],
        },
        "live_telemetry": {
            # machine-independent gate leaf: 1.0 while the enabled
            # submit path stays within the tolerated ratio of disabled
            "overhead_ok": 1.0 if live["ok"] else 0.0,
        },
        "phases": doc["phases"],
        "phase_histograms": phase_hists,
        "imbalance_pct_histogram": _histograms_by_phase(
            doc, "execsim.imbalance_pct"
        ).get("all", {}),
        "timeline": doc["timeline"],
        "obs": {"alerts": doc["obs"]["alerts"]},
        "partitioning": {
            k: v for k, v in doc["partitioning"].items() if k != "usage"
        },
        "partitioner_usage": doc["partitioning"]["usage"],
        "message_center": doc["message_center"],
        "monitoring": doc["monitoring"],
        "runtimes": doc["runtimes"],
        "span_totals_by_path": doc["wall"]["totals_by_path"],
    }
    SNAPSHOT_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {SNAPSHOT_PATH}")
    print(json.dumps(snapshot["wall_clock"], indent=2))

    # The snapshot must carry the acceptance-criteria content.
    assert set(doc["phases"]) == {
        "compute", "comm", "regrid", "partition", "checkpoint", "recovery",
    }
    assert doc["phases"]["compute"] > 0.0
    assert "switches" in doc["partitioning"]
    assert doc["message_center"]["sends"] >= 0.0
    # Tail quantiles: per-phase simulated seconds and sweep task wall
    # seconds both report p50/p95/p99.
    for summary in phase_hists.values():
        assert {"p50", "p95", "p99"} <= set(summary)
    assert task_seconds["count"] == len(SWEEP_SCENARIOS)
    assert task_seconds["p50"] <= task_seconds["p95"] <= task_seconds["p99"]
    # Timeline + anomaly sections (the run-report acceptance criteria).
    assert doc["timeline"]["num_samples"] > 0
    assert "step_cost_s" in doc["timeline"]["series"]
    assert isinstance(doc["obs"]["alerts"], list)
    # Even fully enabled, collection must not blow the run up (loose
    # bound: the <5% disabled-overhead criterion is checked against the
    # Table 4 bench by the driver; this guards the enabled path).
    assert enabled_s < disabled_s * 2.0
    # And the serving runtime's live plane must keep the submit path
    # cheap — the gate leaf the benchdiff loop compares.
    assert live["ok"], (
        f"live telemetry submit overhead ratio {live['ratio']:.2f} "
        f">= {_LIVE_OVERHEAD_RATIO_MAX}"
    )
