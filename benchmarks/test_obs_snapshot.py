"""Observability perf snapshot — emits ``BENCH_obs.json`` at the repo root.

Two jobs:

1. Measure the observability layer's own overhead: the quickstart-sized
   adaptive run is timed with the null registry (the default) and again
   inside a collection window.  The disabled path must stay within noise;
   the enabled path is reported, not asserted (collection is allowed to
   cost something).
2. Write a ``BENCH_obs.json`` perf snapshot — wall-clock, per-phase
   simulated seconds, partitioner switching and message counters — so
   every future perf PR has a machine-readable baseline to compare
   against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs
from repro.obs.report import collect_run_report, quickstart_scenario

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_obs.json"


def _timed_adaptive_run():
    app, policy, runtime = quickstart_scenario()
    trace = runtime.characterize(app, policy, 160)
    t0 = time.perf_counter()
    runtime.run_adaptive(trace, compare_with=("G-MISP+SP", "SFC"))
    return time.perf_counter() - t0


def test_obs_overhead_and_snapshot():
    obs.disable()
    # Warm-up once (partitioner instance caches, numpy JIT-ish costs).
    _timed_adaptive_run()
    disabled_s = min(_timed_adaptive_run() for _ in range(3))
    with obs.collect():
        enabled_s = min(_timed_adaptive_run() for _ in range(3))

    t0 = time.perf_counter()
    report = collect_run_report()
    report_wall_s = time.perf_counter() - t0
    doc = report.to_dict()

    snapshot = {
        "bench": "obs_snapshot",
        "scenario": doc["scenario"],
        "wall_clock": {
            "adaptive_run_disabled_s": disabled_s,
            "adaptive_run_enabled_s": enabled_s,
            "enabled_overhead_pct": (
                100.0 * (enabled_s - disabled_s) / disabled_s
            ),
            "full_report_s": report_wall_s,
        },
        "phases": doc["phases"],
        "partitioning": {
            k: v for k, v in doc["partitioning"].items() if k != "usage"
        },
        "partitioner_usage": doc["partitioning"]["usage"],
        "message_center": doc["message_center"],
        "monitoring": doc["monitoring"],
        "runtimes": doc["runtimes"],
        "span_totals_by_path": doc["wall"]["totals_by_path"],
    }
    SNAPSHOT_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {SNAPSHOT_PATH}")
    print(json.dumps(snapshot["wall_clock"], indent=2))

    # The snapshot must carry the acceptance-criteria content.
    assert set(doc["phases"]) == {
        "compute", "comm", "regrid", "partition", "checkpoint", "recovery",
    }
    assert doc["phases"]["compute"] > 0.0
    assert "switches" in doc["partitioning"]
    assert doc["message_center"]["sends"] >= 0.0
    # Even fully enabled, collection must not blow the run up (loose
    # bound: the <5% disabled-overhead criterion is checked against the
    # Table 4 bench by the driver; this guards the enabled path).
    assert enabled_s < disabled_s * 2.0
