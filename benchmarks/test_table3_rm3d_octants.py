"""Table 3 — Characterizing RM3D application run-time state.

The synthetic RM3D trace is classified with the octant classifier and
partitioners are selected through the Table 2 policy base; the sampled
snapshots must reproduce the paper's rows.  See
:mod:`repro.experiments.table3`.
"""

from repro.experiments import table3


def test_table3_rm3d_octant_characterization(rm3d_trace, benchmark):
    rows = benchmark.pedantic(table3.run, args=(rm3d_trace,), rounds=1,
                              iterations=1)
    print("\n" + table3.render(rows))

    assert len(rows) >= 202, "paper: trace consisted of over 200 snap-shots"
    octants_seen = {r.octant.value for r in rows}
    assert octants_seen == {"I", "II", "III", "IV", "V", "VI", "VII", "VIII"}, (
        "the RM3D run should visit every octant"
    )
    matches = sum(
        rows[idx].octant.value == oct_ and rows[idx].partitioner == part
        for idx, (oct_, part) in table3.PAPER.items()
    )
    assert matches == 8, "sampled snapshots must match the paper's Table 3"
