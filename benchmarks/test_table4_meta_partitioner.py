"""Table 4 — Partitioner performance for RM3D on 64 processors.

Shape targets (paper values in :mod:`repro.experiments.table4`): the
adaptive run is fastest, SFC slowest, G-MISP+SP the best static; adaptive
improves ~25% over the slowest ("27.2%" in the paper); G-MISP+SP has the
best static load balance and pBD-ISP the worst; AMR efficiencies all sit
at ~98.6-98.9%.
"""

import pytest

from repro.experiments import table4


def test_table4_partitioner_performance(rm3d_trace, benchmark):
    report = benchmark.pedantic(table4.run, args=(rm3d_trace,), rounds=1,
                                iterations=1)
    print("\n" + table4.render(report))

    results = {"adaptive": report.adaptive, **report.static}
    rt = {name: results[name].total_runtime for name in results}
    # Who wins: the paper's full runtime ordering.
    assert rt["adaptive"] < rt["G-MISP+SP"] < rt["pBD-ISP"] < rt["SFC"]
    # By roughly what factor: ~27% over the slowest.
    assert 15.0 < report.improvement_over_worst_pct < 40.0
    # Load balance ordering of the static schemes.
    imb = {name: results[name].mean_imbalance_pct for name in results}
    assert imb["G-MISP+SP"] < imb["SFC"] < imb["pBD-ISP"]
    assert imb["G-MISP+SP"] == pytest.approx(11.3, abs=6.0)
    assert imb["pBD-ISP"] == pytest.approx(35.0, abs=8.0)
    # AMR efficiency: all ~98.8%, within a fraction of a percent.
    for name in results:
        assert results[name].amr_efficiency_pct == pytest.approx(98.8, abs=0.4)
    # The adaptive run actually switches: both families used.
    usage = report.adaptive.partitioner_usage()
    assert "pBD-ISP" in usage and "G-MISP+SP" in usage
