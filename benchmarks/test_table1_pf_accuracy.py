"""Table 1 — Accuracy of the Performance Functions.

Paper: composed-PF prediction of the PC1 -> switch -> PC2 response time
is accurate to "roughly between 0.5 - 5%".  See
:mod:`repro.experiments.table1` for the harness.
"""

import pytest

from repro.experiments import table1


def test_table1_pf_accuracy(benchmark):
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print("\n" + table1.render(rows))

    # Shape assertions: millisecond regime, monotone growth, paper band.
    measured = [r.measured for r in rows]
    assert measured == sorted(measured)
    for r in rows:
        _, paper_meas, _ = table1.PAPER[r.data_size]
        assert r.measured == pytest.approx(paper_meas, rel=0.25), (
            "simulated delay regime should track the paper's measurements"
        )
        assert r.error_pct < 6.0, "error must stay in the paper's 0.5-5% band"
