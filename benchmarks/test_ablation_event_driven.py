"""Ablation — event-driven repartitioning vs repartition-every-regrid.

Section 4.7 sketches the fully agent-driven mode: local agents publish
load-threshold and octant-transition events, and the runtime repartitions
only when an event fires.  The ablation measures the trade-off on the
live RM3D driver: fewer repartitions (less migration and partitioning
overhead) against imbalance drift between events.
"""

from repro.amr.regrid import RegridPolicy
from repro.apps import RM3D, RM3DConfig
from repro.core import OnlineAdaptiveRuntime
from repro.gridsys import sp2_blue_horizon


def run_modes():
    cfg = RM3DConfig(
        shape=(64, 16, 16),
        interface_x=20.0,
        shock_entry_snapshot=6.0,
        reshock_snapshot=30.0,
        num_seed_clumps=5,
        num_mixing_structures=10,
    )
    policy = RegridPolicy(thresholds=(0.2, 0.45, 0.7), regrid_interval=4)
    out = {}
    for trigger, label in ((20.0, "tight (20%)"), (60.0, "loose (60%)")):
        runtime = OnlineAdaptiveRuntime(
            sp2_blue_horizon(16), imbalance_trigger_pct=trigger
        )
        out[label] = runtime.run(RM3D(cfg), policy, 160)
    runtime = OnlineAdaptiveRuntime(sp2_blue_horizon(16))
    out["every regrid"] = runtime.run(
        RM3D(cfg), policy, 160, always_repartition=True
    )
    return out


def test_ablation_event_driven_repartitioning(benchmark):
    reports = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    print("\nAblation — event-driven repartitioning (online RM3D, 16 procs)")
    print(f"{'mode':>14} {'runtime(s)':>11} {'repartitions':>13} "
          f"{'mean imb(%)':>12} {'migration':>12}")
    for label, rep in reports.items():
        mig = sum(r.metrics.data_migration for r in rep.result.records)
        print(f"{label:>14} {rep.result.total_runtime:>11.1f} "
              f"{rep.repartitions:>6}/{rep.regrids:<6} "
              f"{rep.result.mean_imbalance_pct:>12.1f} {mig:>12.3g}")

    always = reports["every regrid"]
    loose = reports["loose (60%)"]
    tight = reports["tight (20%)"]
    # Event-driven modes repartition strictly less often.
    assert loose.repartitions < tight.repartitions <= always.repartitions
    # The loose trigger trades imbalance for fewer repartitions.
    assert (loose.result.mean_imbalance_pct
            >= always.result.mean_imbalance_pct - 1e-9)
    # The tight trigger stays within a few percent of always-repartition.
    assert tight.result.total_runtime < always.result.total_runtime * 1.08
    # Events were actually consumed.
    assert loose.events, "event-driven run must observe triggers"
