"""Shared benchmark fixtures.

The full RM3D reference trace (the paper's 128x32x32, 3-level, 800+ coarse
step run) takes ~30 s to generate; :mod:`repro.experiments.common` builds
it once and caches it on disk under ``.cache/``.
"""

from __future__ import annotations

import pytest

from repro.amr.trace import AdaptationTrace
from repro.experiments.common import rm3d_reference_trace


@pytest.fixture(scope="session")
def rm3d_trace() -> AdaptationTrace:
    return rm3d_reference_trace()
