"""Ablation — meta-partitioner switching hysteresis.

DESIGN.md: repartitioning on every octant change risks thrash when the
application sits near an octant boundary.  Hysteresis trades a little
selection lag for fewer partitioner switches; total runtime should stay
within a few percent while the switch count drops.
"""

from repro.core import MetaPartitioner
from repro.execsim import ExecutionSimulator
from repro.gridsys import sp2_blue_horizon


def run_with_hysteresis(trace, hysteresis):
    sim = ExecutionSimulator(sp2_blue_horizon(64), num_procs=64)
    meta = MetaPartitioner(hysteresis=hysteresis)
    result = sim.run(trace, meta)
    labels = [label for _, _, label in meta.selections]
    switches = sum(a != b for a, b in zip(labels, labels[1:]))
    return result, switches


def test_ablation_switching_hysteresis(rm3d_trace, benchmark):
    def run_all():
        return {h: run_with_hysteresis(rm3d_trace, h) for h in (0, 1, 2)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAblation — octant-switch hysteresis")
    print(f"{'hysteresis':>11} {'runtime(s)':>11} {'switches':>9} "
          f"{'migration-load':>15}")
    for h, (res, switches) in results.items():
        mig = sum(r.metrics.data_migration for r in res.records)
        print(f"{h:>11} {res.total_runtime:>11.1f} {switches:>9} {mig:>15.3g}")

    rt0, sw0 = results[0][0].total_runtime, results[0][1]
    rt2, sw2 = results[2][0].total_runtime, results[2][1]
    assert sw2 <= sw0, "hysteresis must not increase switch count"
    assert rt2 < rt0 * 1.10, "hysteresis must not cost more than ~10% runtime"
