"""Ablation — Hilbert vs Morton linearization under the ISP partitioners.

All ISP-family partitioners inherit their communication quality from the
locality of the underlying space-filling curve.  The Hilbert curve's
strictly face-connected traversal should yield partitions with lower cut
communication than the Morton (Z-order) curve's jumps, at identical load
balance (the 1-D split is curve-agnostic).
"""

import numpy as np

from repro.partitioners import SPISPPartitioner, build_units, evaluate_partition


def compare_curves(trace, num_procs=64, samples=16):
    idxs = np.linspace(0, len(trace) - 1, samples).astype(int)
    part = SPISPPartitioner()
    out = {"hilbert": [], "morton": []}
    for k in idxs:
        for curve in out:
            units = build_units(
                trace[int(k)].hierarchy, granularity=2, curve=curve
            )
            p = part.partition(units, num_procs)
            m = evaluate_partition(p)
            out[curve].append((m.comm_volume, m.load_imbalance_pct))
    return out


def test_ablation_hilbert_vs_morton(rm3d_trace, benchmark):
    res = benchmark.pedantic(compare_curves, args=(rm3d_trace,), rounds=1,
                             iterations=1)
    h_comm = np.mean([c for c, _ in res["hilbert"]])
    m_comm = np.mean([c for c, _ in res["morton"]])
    h_imb = np.mean([i for _, i in res["hilbert"]])
    m_imb = np.mean([i for _, i in res["morton"]])

    print("\nAblation — SFC choice under SP-ISP (64 procs)")
    print(f"  hilbert: comm={h_comm:12.1f} imbalance={h_imb:6.2f}%")
    print(f"  morton : comm={m_comm:12.1f} imbalance={m_imb:6.2f}%")
    print(f"  hilbert comm advantage: {100 * (1 - h_comm / m_comm):.1f}%")

    assert h_comm < m_comm, "Hilbert locality must reduce cut communication"
    # Balance is determined by the 1-D split, not the curve.
    assert abs(h_imb - m_imb) < 5.0
