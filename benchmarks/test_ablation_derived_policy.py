"""Ablation — deriving Table 2 from measurements vs expert assignment.

Section 4.4: partitioners are assigned to octants "based on their ability
to meet the requirements of that octant".  The
:mod:`repro.policy.derive` module mechanizes that: measure every
partitioner's PAC metrics on the octant's snapshots, weight the components
by the octant's requirements, and rank.  The derived ranking should
reproduce the paper's expert table for most octants — showing Table 2 is
a consequence of the PAC metric, not an arbitrary choice.
"""

from repro.policy import TABLE2_RECOMMENDATIONS, OctantAxes
from repro.policy.derive import derive_recommendations


def test_ablation_derived_policy(rm3d_trace, benchmark):
    derived = benchmark.pedantic(
        lambda: derive_recommendations(
            rm3d_trace, num_procs=64, max_snapshots_per_octant=6
        ),
        rounds=1,
        iterations=1,
    )

    # The ISP variants are one family: G-MISP vs G-MISP+SP rankings can
    # swap on partition-time jitter (a genuine PAC component measured by
    # wall clock), so agreement is scored exactly and per family.
    families = {
        "SFC": "patch", "pBD-ISP": "geometric",
        "ISP": "isp", "G-MISP": "isp", "G-MISP+SP": "isp", "SP-ISP": "isp",
    }
    print("\nAblation — measured PAC ranking vs the paper's Table 2")
    hits = 0
    family_hits = 0
    for octant in sorted(derived, key=lambda o: o.value):
        top = derived[octant][:3]
        paper = TABLE2_RECOMMENDATIONS[octant]
        ok = top[0] == paper[0]
        hits += ok
        family_hits += families[top[0]] == families[paper[0]]
        print(f"  {octant.value:5s} derived={', '.join(top):<30} "
              f"paper={', '.join(paper):<26} {'ok' if ok else 'miss'}")
    print(f"  top-choice agreement: {hits}/{len(derived)} octants "
          f"(family level: {family_hits}/{len(derived)})")

    assert len(derived) == 8, "the trace must populate all octants"
    assert hits >= 5, "derived ranking must reproduce most of Table 2"
    assert family_hits >= 6, (
        "derived family split must reproduce the Table 2 structure"
    )
    # The structural split must emerge: comm-dominated octants derive a
    # geometric (pBD-ISP) first choice.
    for octant, ranking in derived.items():
        if OctantAxes.of(octant).comm_dominated:
            assert ranking[0] == "pBD-ISP"
