"""Kernel microbenchmark snapshot — emits ``BENCH_kernels.json``.

Times every scalar/vector kernel pair (:mod:`repro.kernels.bench`) on
sized deterministic inputs, asserts the vectorization pay-off the PR
that introduced the kernels promised (sequence partitioning >= 3x at
1e5 units), and writes the machine-readable snapshot the ``python -m
repro benchdiff`` CI gate compares against.  Wall-clock and speedup
entries live under key names the gate's default ignore rules skip;
the ``match`` booleans and output digests are gated exactly, so a
semantics drift in either backend fails CI even if timing noise hides
it locally.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.kernels.bench import run_kernels_bench

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_PATH = REPO_ROOT / "BENCH_kernels.json"

#: the acceptance floor for the sequence kernels at the largest size
MIN_SEQUENCE_SPEEDUP = 3.0


def test_kernels_bench_snapshot():
    doc = run_kernels_bench()

    gate = doc["gate"]
    assert gate["all_match"], "backend outputs diverged — differential bug"
    assert gate["largest_n"] >= 100_000
    assert gate["greedy_speedup_at_largest"] >= MIN_SEQUENCE_SPEEDUP, (
        f"greedy kernel only {gate['greedy_speedup_at_largest']:.1f}x "
        f"at n={gate['largest_n']}"
    )
    assert gate["weighted_speedup_at_largest"] >= MIN_SEQUENCE_SPEEDUP, (
        f"weighted kernel only {gate['weighted_speedup_at_largest']:.1f}x "
        f"at n={gate['largest_n']}"
    )

    SNAPSHOT_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
