"""Characterizing the paper's motivating astrophysical applications.

Section 2 motivates Pragma with galaxy formation (hierarchical mergers)
and supernova explosions (aspherical blast waves).  This example runs
both synthetic drivers, classifies their adaptation traces with the
octant approach, and shows how differently they move through the state
cube — which is exactly why a single static partitioner cannot serve all
of them.

Run with:  python examples/astro_characterization.py
"""

from collections import Counter

from repro.amr.regrid import RegridPolicy
from repro.apps import (
    GalaxyConfig,
    GalaxyFormation,
    Supernova,
    SupernovaConfig,
    generate_trace,
)
from repro.core import MetaPartitioner
from repro.policy import classify_trace


def characterize(name, app, steps):
    policy = RegridPolicy(ratio=2, thresholds=(0.25, 0.55), regrid_interval=4)
    trace = generate_trace(app, policy, steps)
    states = classify_trace(trace)
    meta = MetaPartitioner()

    print(f"\n=== {name} ===")
    print(f"snapshots: {len(trace)}, final patches: "
          f"{trace.snapshots[-1].num_patches}")
    occupancy = Counter(s.octant.value for s in states)
    print("octant occupancy:", dict(sorted(occupancy.items())))
    print("timeline (every 4th snapshot):")
    line = []
    for s in states[::4]:
        line.append(s.octant.value)
    print("  " + " ".join(line))
    picks = Counter(
        meta.decide_for_octant(s.octant).label for s in states
    )
    print("partitioners the policy base would select:", dict(picks))
    return states


def main() -> None:
    galaxy = GalaxyFormation(
        GalaxyConfig(shape=(48, 48, 48), num_clumps=10, collapse_steps=220)
    )
    supernova = Supernova(
        SupernovaConfig(shape=(48, 48, 48), shell_speed=0.09)
    )

    g_states = characterize("galaxy formation", galaxy, 240)
    s_states = characterize("supernova blast", supernova, 240)

    # Galaxy: scattered early, localized late (mergers complete).
    early = sum(s.axes.scattered for s in g_states[: len(g_states) // 4])
    late = sum(s.axes.scattered for s in g_states[-len(g_states) // 4 :])
    print(f"\ngalaxy: scattered snapshots early={early} late={late} "
          "(mergers localize the adaptation)")

    # Supernova: the thin expanding shell is communication-dominated.
    comm = sum(s.axes.comm_dominated for s in s_states)
    print(f"supernova: {comm}/{len(s_states)} snapshots "
          "communication-dominated (thin shell)")


if __name__ == "__main__":
    main()
