"""Agent-based fault recovery with proactive node selection.

Shows the CATALINA control network (Figure 1) in action: the AME
specifies an application with two solver components and a performance
requirement; the MCS discovers a template and builds the execution
environment; component agents checkpoint periodically and publish failure
events; the ADM consolidates them and migrates the affected component to
the node the NWS-style monitor forecasts as fastest.

Run with:  python examples/agent_fault_recovery.py
"""

from repro.agents import ManagementComputingSystem, ManagementEditor
from repro.apps.loadgen import LoadPattern
from repro.gridsys import FailureEvent, linux_cluster
from repro.monitoring import ResourceMonitor


def main() -> None:
    cluster = linux_cluster(
        8, load_pattern=LoadPattern.RANDOM_WALK, max_load=0.6, seed=17
    )
    # Two outages: one transient, one permanent.
    cluster.failures.add(FailureEvent(node_id=2, t_fail=20.0, t_recover=60.0))
    cluster.failures.add(FailureEvent(node_id=5, t_fail=45.0))

    monitor = ResourceMonitor(cluster, seed=18)

    spec = (
        ManagementEditor("rm3d-fault-demo")
        .add_component("solver-a", 3.0e7)
        .add_component("solver-b", 3.0e7)
        .add_component("io-server", 1.0e7)
        .require("performance", 0.5)
        .require("fault_tolerance", 1.0)
        .manage("performance", "migration")
        .build()
    )

    mcs = ManagementComputingSystem(cluster, monitor=monitor)
    env = mcs.build_environment(spec)
    # Put two components in harm's way.
    env.components[0].node_id = 2
    env.components[1].node_id = 5

    print(f"template: {env.template.name} "
          f"(checkpoint every {env.template.blueprint['checkpoint_period']} s)")
    print("running with failures at t=20 (node 2) and t=45 (node 5) ...")
    env.run(2000.0)

    print(f"completed: {env.done} at t={env.time:.0f} s")
    for comp in env.components:
        print(f"  {comp.name:<10} finished on node {comp.node_id} "
              f"after {comp.migrations} migration(s)")
    print("ADM decisions:")
    for t, comp, action in env.adm.decisions:
        print(f"  t={t:6.1f}  {comp:<10} {action}")
    assert env.done


if __name__ == "__main__":
    main()
