"""System-sensitive partitioning on a loaded workstation cluster.

Reproduces the Section 4.6 experiment at example scale: a Linux cluster
with a synthetic background-load generator, NWS-style monitoring, the
capacity calculator of Figure 4, and the comparison between
capacity-proportional and equal workload distribution.

Run with:  python examples/heterogeneous_cluster.py
"""

from repro.amr.regrid import RegridPolicy
from repro.apps import RM3D, RM3DConfig, generate_trace
from repro.apps.loadgen import LoadPattern
from repro.core import CapacityCalculator, CapacityWeights, SystemSensitivePipeline
from repro.gridsys import linux_cluster
from repro.monitoring import ResourceMonitor


def main() -> None:
    print("building a 16-node cluster with heterogeneous background load ...")
    cluster = linux_cluster(
        16, load_pattern=LoadPattern.STEPPED, max_load=0.7, seed=42
    )
    monitor = ResourceMonitor(cluster, seed=43)

    print("capturing the RM3D kernel's adaptation trace ...")
    app = RM3D(RM3DConfig(shape=(64, 16, 16), interface_x=20.0,
                          shock_entry_snapshot=6.0, reshock_snapshot=30.0,
                          num_seed_clumps=5, num_mixing_structures=10))
    trace = generate_trace(
        app, RegridPolicy(thresholds=(0.2, 0.45, 0.7), regrid_interval=4), 160
    )

    print("computing relative capacities (once, before the run) ...")
    weights = CapacityWeights(cpu=0.8, memory=0.05, bandwidth=0.15)
    pipeline = SystemSensitivePipeline(
        cluster=cluster,
        calculator=CapacityCalculator(monitor, weights),
    )
    pipeline.warm_up()
    caps = pipeline.capacities()
    for node in range(0, 16, 4):
        print(f"   node {node:>2}: background load "
              f"{cluster.background_load(node, 16.0):.2f}, "
              f"relative capacity {caps[node]:.4f}")

    print("running equal vs system-sensitive distribution ...")
    equal = pipeline.run_default(trace)
    adaptive = pipeline.run_system_sensitive(trace)
    print(f"   equal distribution  : {equal.total_runtime:8.1f} s")
    print(f"   system-sensitive    : {adaptive.total_runtime:8.1f} s")
    improvement = 100.0 * (1 - adaptive.total_runtime / equal.total_runtime)
    print(f"   improvement         : {improvement:8.1f} %")


if __name__ == "__main__":
    main()
