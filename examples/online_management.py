"""Fully agent-driven online management (Section 4.7).

The application is not pre-traced: at every regrid the characterization
agent classifies the live hierarchy and publishes events to the Message
Center; the runtime repartitions only when an octant transition, a load
jump, or a local load-imbalance threshold fires.  Compare the two
extremes of the repartitioning policy.

Run with:  python examples/online_management.py
"""

from repro.amr.regrid import RegridPolicy
from repro.apps import RM3D, RM3DConfig
from repro.core import OnlineAdaptiveRuntime
from repro.gridsys import sp2_blue_horizon


def main() -> None:
    config = RM3DConfig(
        shape=(64, 16, 16),
        interface_x=20.0,
        shock_entry_snapshot=6.0,
        reshock_snapshot=30.0,
        num_seed_clumps=5,
        num_mixing_structures=10,
    )
    policy = RegridPolicy(thresholds=(0.2, 0.45, 0.7), regrid_interval=4)
    cluster = sp2_blue_horizon(16)

    print("mode            runtime   repartitions   mean imbalance")
    for label, kwargs, run_kwargs in (
        ("every regrid ", {}, {"always_repartition": True}),
        ("events (20%) ", {"imbalance_trigger_pct": 20.0}, {}),
        ("events (60%) ", {"imbalance_trigger_pct": 60.0}, {}),
    ):
        runtime = OnlineAdaptiveRuntime(cluster, **kwargs)
        report = runtime.run(RM3D(config), policy, 160, **run_kwargs)
        print(f"{label}  {report.result.total_runtime:7.1f} s   "
              f"{report.repartitions:4d}/{report.regrids:<4d}      "
              f"{report.result.mean_imbalance_pct:6.1f} %")

    runtime = OnlineAdaptiveRuntime(cluster, imbalance_trigger_pct=60.0)
    report = runtime.run(RM3D(config), policy, 160)
    print("\nevents observed by the 60% run (first 10):")
    for event in report.events[:10]:
        if isinstance(event, tuple):
            print(f"  load-imbalance trigger at step {event[1]} "
                  f"(drift {event[2]:.0f}%)")
        else:
            print(f"  {event.topic} at step {event.payload['step']} "
                  f"-> octant {event.payload['octant']}")


if __name__ == "__main__":
    main()
