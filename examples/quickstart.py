"""Quickstart: adaptive runtime management of a small SAMR run.

Walks the full Pragma loop on a laptop-sized problem:

1. characterize the application — run the synthetic RM3D driver and
   capture its adaptation trace;
2. characterize its state — classify every snapshot into an octant;
3. manage the run — let the meta-partitioner pick partitioners from the
   policy base and compare against a static baseline.

Run with:  python examples/quickstart.py
"""

from repro.amr.regrid import RegridPolicy
from repro.apps import RM3D, RM3DConfig
from repro.core import PragmaRuntime
from repro.gridsys import sp2_blue_horizon
from repro.policy import classify_trace


def main() -> None:
    # A reduced RM3D: 64x16x16 base grid, 160 coarse steps.
    config = RM3DConfig(
        shape=(64, 16, 16),
        interface_x=20.0,
        shock_entry_snapshot=6.0,
        reshock_snapshot=30.0,
        num_seed_clumps=5,
        num_mixing_structures=10,
    )
    app = RM3D(config)
    policy = RegridPolicy(ratio=2, thresholds=(0.2, 0.45, 0.7),
                          regrid_interval=4)

    runtime = PragmaRuntime(cluster=sp2_blue_horizon(16), num_procs=16)

    print("1. capturing the adaptation trace ...")
    trace = runtime.characterize(app, policy, num_coarse_steps=160)
    print(f"   {len(trace)} snapshots, "
          f"{trace.snapshots[-1].num_patches} patches at the end")

    print("2. classifying application state (octant approach) ...")
    states = classify_trace(trace)
    octants = [s.octant.value for s in states]
    print("   octant timeline:", " ".join(octants[::4]))

    print("3. adaptive vs static partitioning ...")
    report = runtime.run_adaptive(trace, compare_with=("G-MISP+SP", "SFC"))
    print(f"   adaptive : {report.adaptive.total_runtime:8.1f} s "
          f"(imbalance {report.adaptive.mean_imbalance_pct:.1f}%)")
    for name, res in report.static.items():
        print(f"   {name:<9}: {res.total_runtime:8.1f} s "
              f"(imbalance {res.mean_imbalance_pct:.1f}%)")
    print(f"   improvement over slowest static: "
          f"{report.improvement_over_worst_pct:.1f}%")
    print(f"   partitioners used: {report.adaptive.partitioner_usage()}")


if __name__ == "__main__":
    main()
